"""One open document: a single-writer worker behind a bounded queue.

Concurrency model
-----------------

All state belongs to the event loop.  The *dispatcher* side
(:meth:`Session.submit_*`, called by the server for each request) only
validates, updates the authoritative ``shadow_text``, and enqueues; the
*worker* task is the session's single writer -- the only code that ever
touches the :class:`~repro.versioned.document.Document`.  The queue is
bounded: when it is full the dispatcher replies ``backpressure``
immediately instead of buffering without limit.

Batching and coalescing
-----------------------

The worker drains greedily: consecutive queued edit requests are merged
into one batch (optionally waiting ``debounce`` seconds for stragglers,
and indefinitely for requests marked ``defer``), their specs coalesced
by the protocol algebra, and the document parsed *once*.  Every request
in the batch receives the same post-batch reply, so N keystrokes cost
one incremental parse.

Text authority and the degradation ladder
-----------------------------------------

``shadow_text`` -- the plain string produced by applying every accepted
edit in order -- is the client's view of the buffer and the service's
ground truth.  A flush must land the document exactly on the batch's
target text, by the cheapest rung that works:

1. **incremental**: apply the coalesced specs, ``doc.parse()`` (which
   internally runs the PR-1 recovery ladder; error isolation preserves
   the text);
2. **batch rebuild**: any failure -- an injected fault, an invariant
   violation, or a parse whose history-sensitive recovery *reverted*
   edits the client still has in its buffer -- discards the document
   and reparses the target text from scratch (error-tolerant);
3. **structured error**: if even the rebuild fails, every waiter gets
   an ``analysis`` error reply and the session stays alive; the next
   request finds the document stale and re-runs the ladder.

A session can therefore be *poisoned* (rung 3) but never *wedged*: no
exception escapes the worker, and recovery needs no operator action.

Durability
----------

Every accepted edit is also appended to a *pending journal* -- seq-tagged
spec lists transforming ``flushed_text`` (the last text the document
committed) into ``shadow_text``.  A successful flush advances
``flushed_text`` and drops the covered entries; a rung-3 failure leaves
them pending, so the journal stays exact across degradation.
:meth:`Session.make_snapshot` captures ``(text, version, journal tail,
pickled committed DAG when healthy)`` and :meth:`Session.restore_from`
replays the tail over the restored DAG -- one incremental pass -- with a
text-only batch-rebuild fallback at every failure point.  The
``on_persist`` hook (wired by the manager to the snapshot store) runs
*before* replies resolve, so an acked batch is a persisted batch.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from .. import obs
from ..language import Language
from ..semantics.analyzer import TypedefAnalyzer
from ..tables.cache import grammar_fingerprint
from ..testing.faults import crash_point, register_points
from ..versioned.document import Document
from .persist import SessionSnapshot
from .protocol import (
    E_ANALYSIS,
    E_BACKPRESSURE,
    E_CLOSED,
    E_EDIT,
    EditSpec,
    coalesce_specs,
    error_reply,
    ok_reply,
    text_digest,
)

register_points(**{
    "service:batch-start": "flush entered, nothing applied yet",
    "service:before-parse": "edits applied, incremental parse next",
    "service:rebuild": "ladder rung 2: batch reparse of the target text",
    "persist:capture": "session state about to be captured as a snapshot",
    "persist:rehydrate": "snapshot about to be restored into a session",
    "persist:rehydrate-parse": "journal tail applied; incremental pass next",
})


@dataclass
class _Work:
    """One queued request: what to do, and whom to answer."""

    kind: str  # "edits" | "parse" | "query" | "analyze" | "invalidate"
    #          # | "snapshot" | "reload" | "close"
    rid: object
    future: asyncio.Future
    specs: list[EditSpec] = field(default_factory=list)
    defer: bool = False
    echo_text: bool = False
    base: str = ""  # shadow text before this item's specs
    target: str = ""  # shadow text after this item's specs
    seq: int = 0  # journal sequence this item is ordered after
    # "invalidate" payload: an upstream document's export delta.
    names_added: set[str] = field(default_factory=set)
    names_removed: set[str] = field(default_factory=set)
    # "reload" payload: the replacement language (already compiled on
    # the dispatcher side -- a grammar that does not build never reaches
    # the worker) plus the session bookkeeping that goes with it.
    new_language: Language | None = None
    new_label: str | None = None
    new_grammar_source: str | None = None


def _resolve(work: _Work, reply: dict) -> None:
    """Deliver a reply unless the waiter timed out (future cancelled)."""
    if not work.future.done():
        work.future.set_result(reply)


class Session:
    """A live editing session over one versioned document."""

    def __init__(
        self,
        name: str,
        language: Language,
        *,
        engine: str = "iglr",
        balanced: bool = True,
        queue_limit: int = 64,
        debounce: float = 0.0,
        on_flush=None,
        on_persist=None,
        on_exports=None,
    ) -> None:
        self.name = name
        self.language = language
        self.language_label = "<inline>"  # manager overwrites with the name
        self.engine = engine
        # Long-lived interactive sessions default to the balanced
        # sequence representation: statement-list spines collapse to
        # log depth, so per-keystroke parses stay flat as buffers grow
        # (paper 3.4).  Clients can opt out per document.
        self.balanced = balanced
        self.debounce = debounce
        self.doc: Document | None = None
        self.shadow_text = ""
        self.queue: asyncio.Queue[_Work] = asyncio.Queue(maxsize=queue_limit)
        self.closed = False
        self.busy = False  # worker holds un-replied work
        self.version_opened = False
        self._worker: asyncio.Task | None = None
        self._gate = asyncio.Event()  # cleared = paused (tests/ops seam)
        self._gate.set()
        self._on_flush = on_flush  # manager hook: resident accounting
        self._on_persist = on_persist  # manager hook: durable snapshot
        self._on_exports = on_exports  # manager hook: export delta fan-out
        # Semantic layer: lazily activated by the first "analyze" (or
        # "depends") op so sessions that never ask pay nothing.
        self.analyzer: TypedefAnalyzer | None = None
        self.semantics_active = False
        # Type names imported from dependency documents.  Shared *by
        # reference* with the analyzer so external deltas applied before
        # an analyzer exists are seen by the one built later.
        self.external_typedefs: set[str] = set()
        # Exports announced by the last analysis (None = never analyzed
        # this session lifetime; the first analysis re-announces).
        self.last_exports: set[str] | None = None
        # Journal tail: seq-tagged spec lists transforming flushed_text
        # (the text the document last committed) into shadow_text.
        self.flushed_text = ""
        self.pending_specs: list[tuple[int, list[EditSpec]]] = []
        self._seq = 0
        self._parked = False  # worker awaiting input with a deferred batch
        self._persist_marker = None  # manager's last-saved dedup key
        self.restored = False  # session came back from a snapshot
        self.grammar_source: str | None = None  # inline DSL (manager sets)
        # Per-session work counters, kept unconditionally (obs may be
        # off); mirrored into obs.* so traces see them too.
        self.counts = {
            "edits_received": 0,
            "edits_applied": 0,
            "batches": 0,
            "parses": 0,
            "rebuilds": 0,
            "degraded": 0,
            "errors": 0,
            "backpressure": 0,
        }

    # -- dispatcher side ------------------------------------------------------

    @property
    def idle(self) -> bool:
        """No queued or in-flight work: safe to evict."""
        return self.queue.empty() and not self.busy

    @property
    def quiesced(self) -> bool:
        """Safe to snapshot: idle, or parked awaiting a deferred batch.

        A parked worker holds accepted-but-unflushed edits -- all of them
        already in ``shadow_text`` and the pending journal, so a snapshot
        taken now captures exactly the client's view.
        """
        return (not self.busy) or self._parked

    def pause(self) -> None:
        """Hold the worker before its next batch (tests, drains)."""
        self._gate.clear()

    def resume(self) -> None:
        self._gate.set()

    def open_with(self, text: str, rid: object) -> asyncio.Future:
        """Queue the initial parse; the reply mirrors an edit reply."""
        self.shadow_text = text
        self._seq += 1
        work = _Work(
            "edits",
            rid,
            asyncio.get_running_loop().create_future(),
            base=text,
            target=text,
            seq=self._seq,
        )
        future = self._enqueue(work)
        if not future.done():
            self.pending_specs.append((work.seq, [EditSpec(0, 0, text)]))
        return future

    def submit_edits(
        self,
        rid: object,
        specs: list[EditSpec],
        *,
        defer: bool = False,
        echo_text: bool = False,
    ) -> asyncio.Future:
        future = asyncio.get_running_loop().create_future()
        base = self.shadow_text
        text = base
        try:
            for spec in specs:
                text = spec.apply(text)
        except ValueError as error:
            future.set_result(error_reply(rid, E_EDIT, str(error)))
            return future
        self._seq += 1
        work = _Work(
            "edits",
            rid,
            future,
            specs=list(specs),
            defer=defer,
            echo_text=echo_text,
            base=base,
            target=text,
            seq=self._seq,
        )
        future = self._enqueue(work)
        if not future.done():  # accepted: the edits are now authoritative
            self.shadow_text = text
            self.pending_specs.append((work.seq, list(specs)))
            self.counts["edits_received"] += len(specs)
            obs.incr("service.edits_received", len(specs))
        return future

    def submit_op(
        self, kind: str, rid: object, *, echo_text: bool = False
    ) -> asyncio.Future:
        """Queue a parse / query / analyze / snapshot / close, ordered
        after edits."""
        work = _Work(
            kind,
            rid,
            asyncio.get_running_loop().create_future(),
            echo_text=echo_text,
            base=self.shadow_text,
            target=self.shadow_text,
            seq=self._seq,
        )
        return self._enqueue(work)

    def submit_reload(
        self,
        rid: object,
        language: Language,
        *,
        label: str | None = None,
        grammar_source: str | None = None,
    ) -> asyncio.Future:
        """Queue a grammar hot-reload, ordered after pending edits.

        The worker swaps the session's language and reparses the
        authoritative text under the new tables (the old DAG's parse
        states are meaningless against a different table, so this is a
        rung-2 batch reparse by construction, never a crash).  ``rid``
        may be ``None`` for the service-wide fan-out path.
        """
        work = _Work(
            "reload",
            rid,
            asyncio.get_running_loop().create_future(),
            base=self.shadow_text,
            target=self.shadow_text,
            seq=self._seq,
            new_language=language,
            new_label=label,
            new_grammar_source=grammar_source,
        )
        return self._enqueue(work)

    def submit_invalidate(
        self, rid: object, added: set[str], removed: set[str]
    ) -> asyncio.Future:
        """Queue an external-typedef delta from an upstream document.

        ``rid`` may be ``None`` for fire-and-forget propagation (the
        manager/dispatcher path); the future still resolves with the
        re-decision summary for callers that want it.
        """
        work = _Work(
            "invalidate",
            rid,
            asyncio.get_running_loop().create_future(),
            base=self.shadow_text,
            target=self.shadow_text,
            seq=self._seq,
            names_added=set(added),
            names_removed=set(removed),
        )
        return self._enqueue(work)

    def _enqueue(self, work: _Work) -> asyncio.Future:
        if self.closed:
            work.future.set_result(
                error_reply(work.rid, E_CLOSED, f"session {self.name!r} closed")
            )
            return work.future
        try:
            self.queue.put_nowait(work)
        except asyncio.QueueFull:
            self.counts["backpressure"] += 1
            obs.incr("service.backpressure")
            work.future.set_result(
                error_reply(
                    work.rid,
                    E_BACKPRESSURE,
                    f"session {self.name!r} queue full "
                    f"({self.queue.maxsize} pending); retry",
                    retry=True,
                )
            )
            return work.future
        if self._worker is None:
            self._worker = asyncio.get_running_loop().create_task(
                self._run(), name=f"repro-session-{self.name}"
            )
        return work.future

    def shut_down(self, *, cancel: bool = True) -> None:
        """Evict/stop: fail queued waiters and kill the worker."""
        self.closed = True
        while True:
            try:
                work = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            _resolve(
                work,
                error_reply(work.rid, E_CLOSED, f"session {self.name!r} closed"),
            )
        if cancel and self._worker is not None:
            self._worker.cancel()
            self._worker = None

    # -- worker side ----------------------------------------------------------

    async def _run(self) -> None:
        while True:
            work = await self.queue.get()
            self.busy = True
            try:
                await self._gate.wait()
                stop = await self._step(work)
            except asyncio.CancelledError:
                # Shutdown/eviction mid-step: the in-flight request must
                # still get an answer (absorbed batch items are resolved
                # by _gather's own handler; _resolve is idempotent).
                _resolve(
                    work,
                    error_reply(
                        work.rid, E_CLOSED, f"session {self.name!r} closed"
                    ),
                )
                raise
            finally:
                self.busy = False
            if stop:
                return

    async def _step(self, work: _Work) -> bool:
        if work.kind == "edits":
            batch, follow = await self._gather(work)
            self._flush(batch)
            if follow is None:
                return False
            work = follow
        return self._handle(work)

    async def _gather(
        self, first: _Work
    ) -> tuple[list[_Work], _Work | None]:
        """Absorb consecutive queued edit requests into one batch.

        Returns the batch plus the first non-edit item encountered (to
        be handled after the flush), if any.  A trailing ``defer`` item
        holds the batch open until *anything* else arrives -- that next
        request is the flush trigger.
        """
        batch = [first]
        try:
            while True:
                try:
                    nxt = self.queue.get_nowait()
                except asyncio.QueueEmpty:
                    if batch[-1].defer:
                        # Parked: every accepted edit is in shadow_text
                        # and the journal, so the session is snapshot-
                        # safe (and forcibly evictable) while we wait.
                        self._parked = True
                        try:
                            nxt = await self.queue.get()
                        finally:
                            self._parked = False
                    elif self.debounce > 0:
                        try:
                            nxt = await asyncio.wait_for(
                                self.queue.get(), self.debounce
                            )
                        except asyncio.TimeoutError:
                            return batch, None
                    else:
                        return batch, None
                if nxt.kind == "edits":
                    batch.append(nxt)
                else:
                    return batch, nxt
        except asyncio.CancelledError:
            # A deferred batch can be parked here indefinitely; shutdown
            # must not strand its waiters.
            for work in batch:
                _resolve(
                    work,
                    error_reply(
                        work.rid, E_CLOSED, f"session {self.name!r} closed"
                    ),
                )
            raise

    def _flush(self, batch: list[_Work]) -> None:
        """Land the document on the batch target, by the cheapest rung."""
        specs = [spec for work in batch for spec in work.specs]
        merged = coalesce_specs(specs)
        base, target = batch[0].base, batch[-1].target
        self.counts["batches"] += 1
        self.counts["edits_applied"] += len(merged)
        obs.incr("service.batches")
        obs.incr("service.edits_applied", len(merged))
        if len(batch) > 1:
            obs.incr("service.requests_batched", len(batch) - 1)
        report = None
        degraded = False
        with obs.span(
            "service.batch", doc=self.name, edits=len(specs), merged=len(merged)
        ):
            try:
                crash_point("service:batch-start")
                if self.doc is None or self.doc.text != base:
                    # Stale (first open, or a rung-3 failure last time):
                    # the incremental rung has nothing sound to build on.
                    report = self._rebuild(target)
                    degraded = self.version_opened
                else:
                    for spec in merged:
                        self.doc.edit(spec.at, spec.remove, spec.insert)
                    crash_point("service:before-parse")
                    report = self.doc.parse()
                    self.counts["parses"] += 1
                    if self.doc.text != target:
                        # History-sensitive recovery reverted edits the
                        # client still has in its buffer; the client's
                        # text is authoritative, so fall back to an
                        # error-isolating batch parse of the target.
                        report = self._rebuild(target)
                        degraded = True
            except asyncio.CancelledError:
                raise
            except Exception:
                try:
                    report = self._rebuild(target)
                    degraded = True
                except asyncio.CancelledError:
                    raise
                except Exception as error:
                    self._fail_batch(batch, error)
                    return
        if degraded:
            self.counts["degraded"] += 1
            obs.incr("service.degraded")
        self.version_opened = True
        self._advance_journal(batch[-1].seq, target)
        if self._on_persist is not None:
            # Write-ahead: persist before replies resolve, so an acked
            # batch is a persisted batch (the kill -9 suite relies on
            # recovered text being the last acked or last sent text).
            self._on_persist(self)
        fields = self._state_fields()
        fields.update(
            batched=len(batch),
            applied=len(merged),
            degraded=degraded,
            error_regions=report.error_regions,
            recovered=report.recovered,
            ambiguous=report.ambiguous_regions,
        )
        if self.semantics_active:
            # Keep the semantic layer current on every flush so export
            # deltas propagate as soon as the edit lands.
            fields.update(self._run_semantics())
        for work in batch:
            reply = ok_reply(work.rid, **fields)
            if work.echo_text:
                reply["text"] = self.doc.text
            _resolve(work, reply)
        if self._on_flush is not None:
            self._on_flush(self)

    def _rebuild(self, target: str):
        """Ladder rung 2: error-tolerant batch reparse of the target text."""
        crash_point("service:rebuild")
        self.counts["rebuilds"] += 1
        obs.incr("service.rebuilds")
        doc = Document(
            self.language,
            target,
            engine=self.engine,
            balanced_sequences=self.balanced,
        )
        report = doc.parse()
        self.doc = doc
        return report

    def _fail_batch(self, batch: list[_Work], error: Exception) -> None:
        """Ladder rung 3: structured error; session stays recoverable."""
        self.counts["errors"] += 1
        obs.incr("service.errors")
        for work in batch:
            _resolve(
                work,
                error_reply(
                    work.rid,
                    E_ANALYSIS,
                    f"analysis failed: {type(error).__name__}: {error}",
                    recoverable=True,
                ),
            )

    def _advance_journal(self, seq: int, target: str) -> None:
        """A flush landed on ``target``: drop the journal it covered."""
        self.flushed_text = target
        self.pending_specs = [
            entry for entry in self.pending_specs if entry[0] > seq
        ]

    def _handle(self, work: _Work) -> bool:
        """A non-edit op; pending edits have already been flushed."""
        if work.kind == "close":
            _resolve(work, ok_reply(work.rid, closed=self.name))
            self.shut_down(cancel=False)
            self._worker = None
            return True
        try:
            if work.kind == "reload":
                # Swap tables *before* the stale check below: the old
                # committed DAG is built from the old table's states, so
                # it is discarded and the rebuild parses the same
                # authoritative text under the new grammar.
                self.language = work.new_language
                if work.new_label is not None:
                    self.language_label = work.new_label
                self.grammar_source = work.new_grammar_source
                self.doc = None
            if (
                self.doc is None
                or self.doc.text != work.target
                # Dirty with matching text: a failed flush left edits
                # applied but unparsed, so tree-derived answers would
                # describe an older buffer.  Rebuild before answering.
                or self.doc.dirty
            ):
                self._rebuild(work.target)
                self.version_opened = True
                self._advance_journal(work.seq, work.target)
            if work.kind == "reload":
                fields = self._state_fields()
                fields["reloaded"] = True
                fields["table_key"] = grammar_fingerprint(
                    self.language.grammar, self.language.table.method, True
                )
                if self.semantics_active:
                    fields.update(self._run_semantics())
                if self._on_persist is not None:
                    # Text and version may match the pre-reload marker,
                    # but the snapshot must pick up the new table
                    # fingerprint (and grammar source): force the save.
                    self._on_persist(self, force=True)
            elif work.kind == "snapshot":
                persisted = False
                if self._on_persist is not None:
                    persisted = bool(self._on_persist(self, force=True))
                fields = self._state_fields()
                fields["persisted"] = persisted
            elif work.kind == "parse":
                report = self.doc.parse()
                self.counts["parses"] += 1
                fields = self._state_fields()
                fields.update(
                    error_regions=report.error_regions,
                    recovered=report.recovered,
                    ambiguous=report.ambiguous_regions,
                )
                if self.semantics_active:
                    fields.update(self._run_semantics())
            elif work.kind == "analyze":
                self.semantics_active = True
                fields = self._state_fields()
                fields.update(self._run_semantics(include_exports=True))
            elif work.kind == "invalidate":
                fields = self._state_fields()
                fields.update(
                    self._apply_invalidate(
                        work.names_added, work.names_removed
                    )
                )
            else:  # query
                fields = self._state_fields()
                fields["has_errors"] = self.doc.has_errors
                fields["ambiguous"] = self.doc.is_ambiguous
        except asyncio.CancelledError:
            raise
        except Exception as error:
            self.counts["errors"] += 1
            obs.incr("service.errors")
            _resolve(
                work,
                error_reply(
                    work.rid,
                    E_ANALYSIS,
                    f"analysis failed: {type(error).__name__}: {error}",
                    recoverable=True,
                ),
            )
            return False
        if self._on_persist is not None:
            self._on_persist(self)  # marker-deduped: no-op when unchanged
        reply = ok_reply(work.rid, **fields)
        if work.echo_text:
            reply["text"] = self.doc.text
        _resolve(work, reply)
        if self._on_flush is not None:
            self._on_flush(self)
        return False

    def _state_fields(self) -> dict:
        return {
            "doc": self.name,
            "version": self.doc.version,
            "tokens": len(self.doc.tokens),
            "sha256": text_digest(self.doc.text),
        }

    # -- semantic layer -------------------------------------------------------

    def _run_semantics(self, *, include_exports: bool = False) -> dict:
        """Analyze (or incrementally update) typedef disambiguation.

        Never raises: semantic failure degrades to a ``sem_error`` field
        on an otherwise-ok reply, so the parsing service stays usable
        even when the semantic layer cannot run.
        """
        try:
            if self.doc is None or self.doc.dirty:
                raise ValueError("document has no committed parse")
            if self.analyzer is None or self.analyzer.document is not self.doc:
                # First analysis, or a rung-2 rebuild replaced the
                # document out from under the old analyzer.
                self.analyzer = TypedefAnalyzer(self.doc)
                self.analyzer.external_typedefs = self.external_typedefs
                report = self.analyzer.analyze()
            else:
                report = self.analyzer.update()
        except asyncio.CancelledError:
            raise
        except Exception as error:
            obs.incr("sem.service_errors")
            return {"sem_error": f"{type(error).__name__}: {error}"}
        return self._semantics_fields(report, include_exports)

    def _semantics_fields(self, report, include_exports: bool) -> dict:
        fields = {
            "sem_decisions": len(report.decisions),
            "sem_unresolved": len(report.unresolved),
            "sem_redecisions": report.sites_refiltered,
            "sem_full_pass": report.full_pass,
            "sem_errors": len(report.errors),
        }
        exports = self.analyzer.exported_typedefs()
        if include_exports:
            fields["exports"] = sorted(exports)
            fields["sem_state"] = self.analyzer.decision_summary()
        previous = self.last_exports
        self.last_exports = exports
        # A session with no prior announcement (first analysis, or just
        # rehydrated) cannot diff locally -- names may have *vanished*
        # relative to what the project last saw.  Announce
        # unconditionally and let the manager hook diff against the
        # project graph's cached exports; its return value is the
        # authoritative delta for the reply (the shard dispatcher reads
        # ``exports_changed`` for cross-worker fan-out).
        if previous is None or exports != previous:
            added = exports - (previous or set())
            removed = (previous or set()) - exports
            if self._on_exports is not None:
                added, removed = self._on_exports(self, added, removed)
            if added or removed:
                fields["exports_changed"] = {
                    "doc": self.name,
                    "added": sorted(added),
                    "removed": sorted(removed),
                }
        return fields

    def _apply_invalidate(self, added: set[str], removed: set[str]) -> dict:
        """Apply an upstream export delta; re-decide dependent choices."""
        self.semantics_active = True
        effective_added = set(added) - self.external_typedefs
        effective_removed = set(removed) & self.external_typedefs
        effective = len(effective_added | effective_removed)
        if self.analyzer is None or self.analyzer.document is not self.doc:
            # No live analysis to patch: record the imports and build
            # the analyzer fresh against them.
            self.external_typedefs |= effective_added
            self.external_typedefs -= effective_removed
            fields = self._run_semantics()
            fields["sem_invalidated"] = effective
            return fields
        try:
            report = self.analyzer.apply_external_delta(
                set(added), set(removed)
            )
        except asyncio.CancelledError:
            raise
        except Exception as error:
            obs.incr("sem.service_errors")
            return {
                "sem_error": f"{type(error).__name__}: {error}",
                "sem_invalidated": effective,
            }
        fields = self._semantics_fields(report, False)
        fields["sem_invalidated"] = effective
        return fields

    # -- durability -----------------------------------------------------------

    def make_snapshot(self) -> SessionSnapshot:
        """Capture the session's durable form.

        The journal tail (``flushed_text`` -> ``shadow_text``) is
        verified by replay before it is trusted; the pickled document
        payload rides along only when the committed DAG exactly matches
        ``flushed_text``.  Any inconsistency degrades to an insert-all
        snapshot -- robustness never depends on the warm path.
        """
        crash_point("persist:capture")
        base_text = self.flushed_text
        tail = [
            (spec.at, spec.remove, spec.insert)
            for _seq, specs in self.pending_specs
            for spec in specs
        ]
        doc_payload = None
        if (
            self.doc is not None
            and not self.doc.dirty
            and self.doc.text == base_text
        ):
            doc_payload = self.doc.snapshot_state()
        if doc_payload is None:
            # No healthy committed DAG to replay against: collapse the
            # journal so rehydration is one batch parse of the text.
            base_text, tail = "", [(0, 0, self.shadow_text)]
        else:
            text = base_text
            try:
                for at, remove, insert in tail:
                    text = EditSpec(at, remove, insert).apply(text)
            except ValueError:
                text = None
            if text != self.shadow_text:
                obs.incr("persist.capture_fallback")
                base_text, tail = "", [(0, 0, self.shadow_text)]
                doc_payload = None
        label = self.language_label
        inline = label == "<inline>"
        return SessionSnapshot(
            name=self.name,
            language=None if inline else label,
            # Carried even for *named* languages once a hot-reload set
            # it: a fresh process (e.g. a respawned shard worker) has
            # only its built-in registry, so the source is what lets it
            # rehydrate this session under the reloaded grammar.
            grammar=self.grammar_source,
            engine=self.engine,
            balanced=self.balanced,
            text=self.shadow_text,
            base_text=base_text,
            journal_tail=tail,
            version=self.doc.version if self.doc is not None else 0,
            table_key=grammar_fingerprint(
                self.language.grammar, self.language.table.method, True
            ),
            version_opened=self.version_opened,
            counts=dict(self.counts),
            doc_payload=doc_payload,
        )

    def restore_from(self, snapshot: SessionSnapshot) -> None:
        """Rehydrate from a snapshot: one incremental pass, not a rebuild.

        Restores the committed DAG, replays the journal tail, and runs a
        single incremental parse.  *Any* failure falls back to text-only
        state -- the next request's flush finds ``doc is None`` and runs
        the ordinary degradation ladder, so a bad payload costs a batch
        reparse, never a crash.  Counters restart at zero (the manager's
        retirement accounting already folded the old life in).
        """
        crash_point("persist:rehydrate")
        self.shadow_text = snapshot.text
        self.version_opened = snapshot.version_opened
        self.restored = True
        doc = None
        # A payload pickled under a different parse table (the snapshot
        # predates a grammar reload) must not be grafted onto this
        # session's tables: fall through to the text-only path, which
        # reparses under the current grammar.
        payload_usable = snapshot.doc_payload is not None
        if payload_usable and snapshot.table_key != grammar_fingerprint(
            self.language.grammar, self.language.table.method, True
        ):
            obs.incr("persist.rehydrate_table_mismatch")
            payload_usable = False
        if payload_usable:
            try:
                doc = Document.restore_state(
                    self.language, snapshot.doc_payload
                )
                for spec in snapshot.tail_specs():
                    doc.edit(spec.at, spec.remove, spec.insert)
                crash_point("persist:rehydrate-parse")
                if doc.dirty:
                    doc.parse()
                if doc.text != snapshot.text:
                    raise ValueError(
                        "rehydrated text diverges from snapshot text"
                    )
            except Exception:
                doc = None
        if doc is not None:
            self.doc = doc
            self.flushed_text = doc.text
            self.pending_specs = []
            obs.incr("persist.rehydrate_incremental")
        else:
            self.doc = None
            self.flushed_text = ""
            self._seq += 1
            self.pending_specs = [
                (self._seq, [EditSpec(0, 0, snapshot.text)])
            ]
            obs.incr("persist.rehydrate_rebuild")

    # -- introspection --------------------------------------------------------

    def resident_nodes(self) -> int:
        """DAG size of the committed tree (memoized per version)."""
        return self.doc.tree_node_count() if self.doc is not None else 0

    def describe(self) -> dict:
        return {
            "language": self.language_label,
            "engine": self.engine,
            "balanced": self.balanced,
            "version": self.doc.version if self.doc else 0,
            "tokens": len(self.doc.tokens) if self.doc else 0,
            "resident_nodes": self.resident_nodes(),
            "queue_depth": self.queue.qsize(),
            "busy": self.busy,
            "quiesced": self.quiesced,
            "restored": self.restored,
            "semantics": self.semantics_active,
            "journal_edits": sum(
                len(specs) for _seq, specs in self.pending_specs
            ),
            "counts": dict(self.counts),
        }
