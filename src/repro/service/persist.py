"""Durable session snapshots: crash-safe persistence for the service.

A process restart -- deploy, OOM eviction, ``kill -9`` -- must be just
another disruption whose repair cost is bounded by the change, not the
document (Wiren's bounded-incremental-parsing framing).  This module
gives the session pool that property:

* a :class:`SessionSnapshot` is the compact durable form of one open
  session: the authoritative text, the committed document version, the
  language identity (built-in name or inline grammar-DSL source, plus
  the parse-table fingerprint the shared table cache warms from), the
  *coalesced journal tail* -- edit specs that transform the committed
  text into the authoritative text -- and the degradation-ladder state.
  When the committed parse DAG is healthy it rides along as a pickled
  payload, so rehydration replays one incremental pass over the journal
  tail instead of a batch reparse;
* a :class:`SnapshotStore` owns one directory of snapshot files.  Every
  write is atomic (temp file + ``os.replace``, the same discipline as
  `repro.tables.cache`), every read is verified (magic, format version,
  length, content digest) and a file that fails verification --
  truncated, version-mismatched, or garbage -- is *quarantined*: renamed
  aside, counted, and treated as a miss, never an exception.  A corrupt
  snapshot therefore costs one cold session, not a crashed service.
  With the sharded service (``repro serve --workers N``) several
  processes share one store, so every mutation additionally takes a
  per-session ``flock`` sidecar lock and plants an O_EXCL claim file as
  a tripwire: two live writers on the same session can never interleave
  a save, and if they somehow try, ``save_conflicts`` counts the alarm.

Crash points cover every transition (serialize, write, publish, load,
quarantine, rehydrate), so the fault suite can kill the process at any
of them and assert recovery.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import sys
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-posix: claim files only
    fcntl = None

from .. import obs
from ..testing.faults import crash_point, register_points
from .protocol import EditSpec

register_points(**{
    "persist:serialize": "session snapshot about to be pickled",
    "persist:write": "snapshot bytes written to the temp file",
    "persist:publish": "temp file about to be atomically renamed",
    "persist:load": "snapshot file about to be read and verified",
    "persist:quarantine": "corrupt snapshot about to be renamed aside",
    "persist:delete": "snapshot about to be removed",
})

# Bytes identifying a snapshot file; changing the layout bumps FORMAT.
MAGIC = b"REPROSNAP"
FORMAT = 1

# MAGIC + format (u32) + payload length (u64) + sha256 digest.
_HEADER = struct.Struct(f"<{len(MAGIC)}sIQ32s")

# Parent-linked parse DAGs pickle recursively; give deep (unbalanced)
# trees headroom instead of letting RecursionError degrade the snapshot.
_PICKLE_RECURSION = 100_000


def _pid_alive(pid: int) -> bool:
    """Is there a live process with this pid (signal-0 probe)?"""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by other uid
        return True
    except OSError:
        return False
    return True


@dataclass
class SessionSnapshot:
    """Everything needed to resurrect one session in a fresh process."""

    name: str
    language: str | None  # built-in language name, or None for inline
    grammar: str | None  # inline grammar-DSL source, or None for built-in
    engine: str
    balanced: bool
    text: str  # authoritative (client-equal) text
    base_text: str  # committed text the doc payload corresponds to
    journal_tail: list[tuple[int, int, str]]  # base_text -> text
    version: int
    table_key: str  # parse-table cache fingerprint (warm-start identity)
    version_opened: bool
    counts: dict[str, int] = field(default_factory=dict)
    doc_payload: dict | None = None  # Document.snapshot_state(), if healthy

    def tail_specs(self) -> list[EditSpec]:
        return [EditSpec(at, remove, insert)
                for at, remove, insert in self.journal_tail]


class SnapshotStore:
    """One directory of verified, atomically-published session snapshots."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.counts = {
            "saves": 0,
            "save_errors": 0,
            "save_degraded": 0,  # doc payload dropped to keep the save
            "loads": 0,
            "misses": 0,
            "quarantined": 0,
            "deletes": 0,
            "lock_waits": 0,  # mutations that found the lock held
            "save_conflicts": 0,  # live concurrent writer seen (alarm!)
            "stale_claims": 0,  # dead writer's claim file cleaned up
        }

    # -- cross-process locking ------------------------------------------------

    @contextmanager
    def _locked(self, name: str):
        """Serialize mutations of one session's files across processes.

        The sharded service routes each document to exactly one worker,
        but that invariant must not be load-bearing for storage safety:
        a respawn race, a resized pool, or an operator's ``repro
        sessions --gc`` can all touch the same snapshot concurrently.
        ``flock`` on a per-session sidecar file makes every mutation
        exclusive, and -- unlike claim files -- is released by the
        kernel even on ``kill -9``.  The lock file itself is never
        unlinked: remove-and-recreate races would hand two processes
        locks on different inodes.
        """
        if fcntl is None:  # pragma: no cover - non-posix
            yield
            return
        fd = os.open(
            self.path_for(name).with_suffix(".lock"),
            os.O_CREAT | os.O_RDWR,
            0o644,
        )
        try:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                self.counts["lock_waits"] += 1
                obs.incr("persist.lock_waits")
                fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def _claim(self, name: str) -> Path | None:
        """O_EXCL tripwire proving the lock actually excludes writers.

        Created (with our pid) for the duration of a save.  Finding one
        already present means either a *dead* writer was killed mid-save
        (stale: remove and carry on -- the flock guarantees nobody live
        holds it) or a *live* process is writing concurrently, i.e. the
        locking failed; that is counted as ``save_conflicts``, the
        counter the two-process hammer test asserts stays zero.  Either
        way the save proceeds: atomic publish keeps the bytes safe, the
        counters keep the invariant observable.
        """
        claim = self.path_for(name).with_suffix(".claim")
        for _ in range(2):
            try:
                fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    pid = int(claim.read_text() or "0")
                except (OSError, ValueError):
                    pid = 0
                if pid and _pid_alive(pid):
                    self.counts["save_conflicts"] += 1
                    obs.incr("persist.save_conflicts")
                else:
                    self.counts["stale_claims"] += 1
                    obs.incr("persist.stale_claims")
                try:
                    claim.unlink()
                except OSError:
                    return None
                continue
            except OSError:
                return None
            with os.fdopen(fd, "w") as fh:
                fh.write(str(os.getpid()))
            return claim
        return None

    # -- naming ---------------------------------------------------------------

    def path_for(self, name: str) -> Path:
        """Snapshot file for a session name (names are arbitrary strings)."""
        digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:32]
        return self.directory / f"{digest}.snap"

    # -- save -----------------------------------------------------------------

    def save(self, snapshot: SessionSnapshot) -> int:
        """Atomically publish a snapshot; returns the byte size.

        Raises on I/O failure -- callers on the request path guard and
        count, because a full or read-only state directory must never
        fail a batch.
        """
        with obs.span("persist.save", doc=snapshot.name):
            try:
                with self._locked(snapshot.name):
                    claim = self._claim(snapshot.name)
                    try:
                        size = self._save_inner(snapshot)
                    finally:
                        if claim is not None:
                            try:
                                claim.unlink()
                            except OSError:
                                pass
            except Exception:
                self.counts["save_errors"] += 1
                obs.incr("persist.save_errors")
                raise
        self.counts["saves"] += 1
        obs.incr("persist.saves")
        obs.incr("persist.save_bytes", size)
        return size

    def _save_inner(self, snapshot: SessionSnapshot) -> int:
        crash_point("persist:serialize")
        payload = self._serialize(snapshot)
        header = _HEADER.pack(
            MAGIC, FORMAT, len(payload), hashlib.sha256(payload).digest()
        )
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(header)
                fh.write(payload)
            crash_point("persist:write")
            os.replace(tmp, self.path_for(snapshot.name))
            crash_point("persist:publish")
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(header) + len(payload)

    def _serialize(self, snapshot: SessionSnapshot) -> bytes:
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, _PICKLE_RECURSION))
        try:
            try:
                return pickle.dumps(snapshot, pickle.HIGHEST_PROTOCOL)
            except Exception:
                if snapshot.doc_payload is None:
                    raise
                # An unpicklable tree must not lose the session: retry
                # text-only, trading warm recovery for a batch rebuild.
                snapshot.doc_payload = None
                self.counts["save_degraded"] += 1
                obs.incr("persist.save_degraded")
                return pickle.dumps(snapshot, pickle.HIGHEST_PROTOCOL)
        finally:
            sys.setrecursionlimit(limit)

    # -- load -----------------------------------------------------------------

    def load(self, name: str) -> SessionSnapshot | None:
        """Verified read; missing -> None, corrupt -> quarantined + None."""
        path = self.path_for(name)
        with obs.span("persist.load", doc=name):
            crash_point("persist:load")
            with self._locked(name):
                try:
                    blob = path.read_bytes()
                except FileNotFoundError:
                    self.counts["misses"] += 1
                    obs.incr("persist.misses")
                    return None
                except OSError:
                    return self._quarantine(path, "unreadable")
                snapshot = self._verify(path, blob)
        if snapshot is not None:
            self.counts["loads"] += 1
            obs.incr("persist.loads")
            if snapshot.name != name:
                # Hash-prefix collision or a copied file: not this session.
                return self._quarantine(path, "name-mismatch")
        return snapshot

    def _verify(self, path: Path, blob: bytes) -> SessionSnapshot | None:
        if len(blob) < _HEADER.size:
            return self._quarantine(path, "truncated")
        magic, fmt, length, digest = _HEADER.unpack_from(blob)
        if magic != MAGIC:
            return self._quarantine(path, "garbage")
        if fmt != FORMAT:
            return self._quarantine(path, f"format v{fmt}")
        payload = blob[_HEADER.size:]
        if len(payload) != length:
            return self._quarantine(path, "truncated")
        if hashlib.sha256(payload).digest() != digest:
            return self._quarantine(path, "digest mismatch")
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, _PICKLE_RECURSION))
        try:
            snapshot = pickle.loads(payload)
        except Exception:
            return self._quarantine(path, "unpicklable")
        finally:
            sys.setrecursionlimit(limit)
        if not isinstance(snapshot, SessionSnapshot):
            return self._quarantine(path, "wrong type")
        return snapshot

    def _quarantine(self, path: Path, reason: str) -> None:
        """Rename a bad file aside so it is kept for forensics, not retried."""
        crash_point("persist:quarantine")
        self.counts["quarantined"] += 1
        obs.incr("persist.quarantined")
        try:
            os.replace(path, path.with_suffix(".snap.bad"))
        except OSError:
            pass  # already gone, or directory read-only: miss either way
        return None

    # -- maintenance ----------------------------------------------------------

    def delete(self, name: str) -> bool:
        """Drop a session's snapshot (close, or open-over with fresh text)."""
        crash_point("persist:delete")
        with self._locked(name):
            try:
                self.path_for(name).unlink()
            except FileNotFoundError:
                return False
            except OSError:
                return False
        self.counts["deletes"] += 1
        obs.incr("persist.deletes")
        return True

    def entries(self) -> list[dict]:
        """One descriptor per snapshot file (``repro sessions --list``).

        Listing is read-only: a corrupt file is reported, not
        quarantined -- quarantine happens on the load path where a
        session's recovery actually depends on the bytes.
        """
        out = []
        for path in sorted(self.directory.glob("*.snap")):
            stat = path.stat()
            entry = {
                "file": path.name,
                "bytes": stat.st_size,
                "mtime": stat.st_mtime,
            }
            try:
                snapshot = self._peek(path)
            except Exception:
                snapshot = None
            if snapshot is None:
                entry["corrupt"] = True
            else:
                entry.update(
                    name=snapshot.name,
                    language=snapshot.language or "<inline>",
                    engine=snapshot.engine,
                    version=snapshot.version,
                    text_bytes=len(snapshot.text),
                    journal_edits=len(snapshot.journal_tail),
                    warm=snapshot.doc_payload is not None,
                )
            out.append(entry)
        return out

    def quarantined_files(self) -> list[Path]:
        return sorted(self.directory.glob("*.bad"))

    def _peek(self, path: Path) -> SessionSnapshot | None:
        """Verification-only read that never renames anything."""
        blob = path.read_bytes()
        if len(blob) < _HEADER.size:
            return None
        magic, fmt, length, digest = _HEADER.unpack_from(blob)
        payload = blob[_HEADER.size:]
        if (
            magic != MAGIC
            or fmt != FORMAT
            or len(payload) != length
            or hashlib.sha256(payload).digest() != digest
        ):
            return None
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, _PICKLE_RECURSION))
        try:
            snapshot = pickle.loads(payload)
        finally:
            sys.setrecursionlimit(limit)
        return snapshot if isinstance(snapshot, SessionSnapshot) else None

    def gc(self, max_age_seconds: float | None = None, *,
           now: float | None = None) -> dict:
        """Remove quarantined files, and snapshots older than ``max_age``."""
        import time

        now = time.time() if now is None else now
        removed_bad = removed_old = removed_claims = 0
        for path in self.quarantined_files():
            try:
                path.unlink()
                removed_bad += 1
            except OSError:
                pass
        # Claim files normally vanish with their save; one left behind
        # belongs to a writer that died mid-save (its pid is dead).
        for path in list(self.directory.glob("*.claim")):
            try:
                pid = int(path.read_text() or "0")
            except (OSError, ValueError):
                pid = 0
            if pid and _pid_alive(pid):
                continue
            try:
                path.unlink()
                removed_claims += 1
            except OSError:
                pass
        if max_age_seconds is not None:
            for path in list(self.directory.glob("*.snap")):
                try:
                    if now - path.stat().st_mtime > max_age_seconds:
                        path.unlink()
                        removed_old += 1
                except OSError:
                    pass
        return {
            "quarantined_removed": removed_bad,
            "expired_removed": removed_old,
            "stale_claims_removed": removed_claims,
        }

    def stats(self) -> dict:
        snaps = list(self.directory.glob("*.snap"))
        return {
            "dir": str(self.directory),
            "format": FORMAT,
            "snapshots": len(snaps),
            "bytes": sum(p.stat().st_size for p in snaps),
            "quarantined_files": len(self.quarantined_files()),
            **self.counts,
        }
