"""Multi-core backend: shard the session pool across worker processes.

A single :class:`~repro.service.server.AnalysisService` is single-writer
per session but still one CPU-bound process, so aggregate throughput
caps at one core however many documents are open.  Sessions share no
mutable state (the paper's per-document incrementality is embarrassingly
parallel across documents), which makes the scaling move mechanical:
run N copies of the service and route each document to exactly one of
them.

:class:`ShardDispatcher` is that router.  It speaks the *same* JSON
-lines protocol as the in-process service -- ``handle(request) ->
reply`` -- so every transport, bench, and differential suite runs
unchanged against it:

* **workers** are subprocesses running :mod:`repro.service.worker`
  (a plain ``AnalysisService`` on a stdio pipe transport), each with its
  own event loop, session pool, and degradation ladder;
* **routing** is rendezvous (highest-random-weight) hashing on the
  document id: ``shard_for(doc, N)`` is deterministic, uniform, and
  *consistent* -- resizing from N to N+1 workers remaps only ~1/(N+1)
  of the documents, and because every worker shares one on-disk
  :class:`~repro.service.persist.SnapshotStore` (``--state-dir``) and
  one parse-table cache (`repro.tables.cache`), a remapped or respawned
  worker lazily rehydrates its sessions instead of losing them;
* **worker death is a routine event**, not an outage: the dispatcher
  notices EOF on the worker's pipe, answers that worker's in-flight
  requests with a ``worker-restart`` error (``retry: true`` -- the
  session itself is durable), folds the worker's last-known counters
  into a retired total so aggregate stats never move backwards, and
  respawns the shard.  The next request for one of its documents
  rehydrates from the shared snapshot store -- the PR-5 persistence
  layer makes a worker crash cost one warm recovery, not a lost pool;
* **fan-out ops**: ``stats`` queries every worker and merges the
  counter dicts (plus the retired totals of dead worker lives);
  ``shutdown`` broadcasts so every shard snapshots its sessions before
  exiting; ``ping`` is answered locally.

Residency limits (``max_sessions``, ``max_resident_nodes``, queue
bounds) apply *per shard*: the flags keep their single-process meaning
inside each worker.

Fault injection: a ``REPRO_CRASH_AT`` inherited from the environment is
deliberately *stripped* from worker environments -- otherwise every
respawned worker would re-arm the same kill and crash-loop.  The
kill-a-worker suite arms a specific shard's *first* life via
``fault_env={shard_index: {"REPRO_CRASH_AT": ...}}``; respawns always
come up clean, which is what makes the recovery path testable.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import os
import sys
from pathlib import Path

from .. import obs
from ..testing.faults import CRASH_ENV
from .protocol import (
    E_PROTOCOL,
    E_TIMEOUT,
    E_UNKNOWN_OP,
    E_WORKER,
    encode,
    error_reply,
    ok_reply,
)
from .server import SESSION_OPS, ServiceTransport

# Ops the dispatcher understands at all; anything else is unknown-op
# locally (no round trip to a worker that would say the same thing).
_LOCAL_OPS = {"ping", "stats", "shutdown"}
_ALL_OPS = _LOCAL_OPS | {"open", "reload_grammar"} | SESSION_OPS

# Extra seconds past the worker's own request timeout before the
# dispatcher gives up on a reply (the worker answers its own timeouts;
# this net only catches a hung or dying worker).
_TIMEOUT_GRACE = 5.0

# Reply deadline for the stats fan-out: a wedged worker must not stall
# the whole aggregate view (its last-known counters stand in).
_STATS_TIMEOUT = 10.0

_SRC_ROOT = Path(__file__).resolve().parents[2]


def shard_for(doc: str, shards: int) -> int:
    """Which worker owns ``doc``: rendezvous (HRW) hashing.

    Every (shard, doc) pair gets an independent score; the highest
    score wins.  Uniform for any shard count, and consistent: adding or
    removing one shard remaps only the documents whose winner changed,
    ~1/N of them -- which matters because remapped documents pay one
    snapshot rehydration on their new worker.
    """
    if shards <= 1:
        return 0
    best, best_score = 0, b""
    for index in range(shards):
        score = hashlib.sha256(b"%d|%s" % (index, doc.encode("utf-8"))).digest()
        if score > best_score:
            best, best_score = index, score
    return best


class _Worker:
    """One shard slot: the live subprocess plus its bookkeeping."""

    __slots__ = (
        "index",
        "proc",
        "reader_task",
        "pending",
        "last_stats",
        "generation",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc: asyncio.subprocess.Process | None = None
        self.reader_task: asyncio.Task | None = None
        # internal id -> (client id, waiting future)
        self.pending: dict[int, tuple[object, asyncio.Future]] = {}
        # Last stats dict this worker life reported (folded into the
        # retired totals when the life ends).
        self.last_stats: dict | None = None
        self.generation = 0

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.returncode is None


class ShardDispatcher(ServiceTransport):
    """Protocol front end that routes requests to N worker processes."""

    def __init__(
        self,
        workers: int,
        *,
        max_sessions: int = 32,
        max_resident_nodes: int = 2_000_000,
        queue_limit: int = 64,
        debounce: float = 0.0,
        request_timeout: float = 30.0,
        state_dir: str | os.PathLike | None = None,
        worker_env: dict[str, str] | None = None,
        fault_env: dict[int, dict[str, str]] | None = None,
        respawn: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.max_sessions = max_sessions
        self.max_resident_nodes = max_resident_nodes
        self.queue_limit = queue_limit
        self.debounce = debounce
        self.request_timeout = request_timeout
        self.state_dir = os.fspath(state_dir) if state_dir else None
        self.worker_env = dict(worker_env or {})
        self.fault_env = {k: dict(v) for k, v in (fault_env or {}).items()}
        self.respawn = respawn
        self.requests = 0
        self.timeouts = 0
        self.counts = {
            "routed": 0,
            "worker_restarts": 0,
            "forward_errors": 0,
            "invalidations": 0,
        }
        # Cross-shard dependency edges: dependency doc -> dependents on
        # *other* shards get their "names changed" deltas routed here
        # (co-sharded dependents are the owning worker's manager's job).
        self._rdeps: dict[str, set[str]] = {}
        self._handles = [_Worker(i) for i in range(workers)]
        self._iid = itertools.count(1)
        # Counters of completed worker lives, so stats() totals cover
        # the pool's whole lifetime (the respawn-reset fix).
        self._retired_counters: dict[str, int] = {}
        self._retired_requests = 0
        self._retired_timeouts = 0
        self._stopping = asyncio.Event()
        self._closing = False
        self._started = False
        self._start_lock = asyncio.Lock()

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Spawn every worker (idempotent; also done lazily by handle)."""
        async with self._start_lock:
            if self._started or self._closing:
                return
            for handle in self._handles:
                await self._spawn(handle)
            self._started = True

    def _worker_command(self) -> list[str]:
        cmd = [
            sys.executable,
            "-m",
            "repro.service.worker",
            "--shards",
            str(self.workers),
            "--max-sessions",
            str(self.max_sessions),
            "--max-nodes",
            str(self.max_resident_nodes),
            "--queue-limit",
            str(self.queue_limit),
            "--debounce-ms",
            str(self.debounce * 1e3),
            "--timeout",
            str(self.request_timeout or 0.0),
        ]
        if self.state_dir:
            cmd += ["--state-dir", self.state_dir]
        return cmd

    def _worker_environment(self, handle: _Worker) -> dict[str, str]:
        env = dict(os.environ)
        # An armed kill must fire once per shard slot, not once per
        # life: a respawn that re-armed the same SIGKILL would loop.
        env.pop(CRASH_ENV, None)
        env["PYTHONPATH"] = str(_SRC_ROOT) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env.update(self.worker_env)
        if handle.generation == 0:
            env.update(self.fault_env.get(handle.index, {}))
        return env

    async def _spawn(self, handle: _Worker) -> None:
        handle.proc = await asyncio.create_subprocess_exec(
            *self._worker_command(),
            "--shard",
            str(handle.index),
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            env=self._worker_environment(handle),
        )
        handle.reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(handle),
            name=f"repro-shard-{handle.index}-g{handle.generation}",
        )
        obs.incr("shard.spawns")

    async def _read_loop(self, handle: _Worker) -> None:
        """Match worker replies to waiting futures; handle death on EOF."""
        proc = handle.proc
        while True:
            line = await proc.stdout.readline()
            if not line:
                break
            try:
                reply = json.loads(line)
            except json.JSONDecodeError:
                continue  # a line truncated by a dying worker
            if not isinstance(reply, dict):
                continue
            entry = handle.pending.pop(reply.get("id"), None)
            if entry is None:
                continue  # reply raced a timeout or a death sweep
            rid, future = entry
            reply["id"] = rid
            if not future.done():
                future.set_result(reply)
        await self._on_worker_exit(handle, proc)

    async def _on_worker_exit(self, handle: _Worker, proc) -> None:
        returncode = await proc.wait()
        self._fail_pending(
            handle,
            f"shard {handle.index} worker exited "
            f"(rc={returncode}); respawning",
        )
        self._retire_worker(handle)
        if self._closing or self._stopping.is_set() or not self.respawn:
            return
        handle.generation += 1
        self.counts["worker_restarts"] += 1
        obs.incr("shard.worker_restarts")
        await self._spawn(handle)

    def _fail_pending(self, handle: _Worker, message: str) -> None:
        pending, handle.pending = handle.pending, {}
        for rid, future in pending.values():
            if not future.done():
                future.set_result(
                    error_reply(rid, E_WORKER, message, retry=True)
                )

    def _retire_worker(self, handle: _Worker) -> None:
        """Fold a dead life's last-known counters into the totals.

        The fold is as fresh as the last ``stats`` fan-out (work done
        after that scrape died with the process), but it guarantees the
        aggregate counters never *decrease* across a respawn.
        """
        stats = handle.last_stats
        handle.last_stats = None
        if not stats:
            return
        for key, value in (stats.get("counters") or {}).items():
            if isinstance(value, int):
                self._retired_counters[key] = (
                    self._retired_counters.get(key, 0) + value
                )
        self._retired_requests += stats.get("requests", 0)
        self._retired_timeouts += stats.get("timeouts", 0)

    async def aclose(self) -> None:
        """Broadcast shutdown so every shard snapshots, then reap."""
        # Wait out an in-progress start(): closing mid-spawn would skip
        # the not-yet-alive workers and leak them.
        async with self._start_lock:
            self._closing = True
        self._stopping.set()
        procs = []
        for handle in self._handles:
            if not handle.alive:
                continue
            procs.append(handle.proc)
            try:
                handle.proc.stdin.write(
                    (encode({"op": "shutdown", "id": None}) + "\n").encode()
                )
                await handle.proc.stdin.drain()
                handle.proc.stdin.close()
            except (ConnectionError, OSError, RuntimeError):
                pass
        if procs:
            done, pending = await asyncio.wait(
                [asyncio.ensure_future(p.wait()) for p in procs],
                timeout=15.0,
            )
            if pending:
                for proc in procs:
                    if proc.returncode is None:
                        proc.kill()
                await asyncio.gather(*pending, return_exceptions=True)
        for handle in self._handles:
            if handle.reader_task is not None:
                try:
                    await handle.reader_task
                except asyncio.CancelledError:
                    pass
                handle.reader_task = None

    # -- dispatch -------------------------------------------------------------

    async def handle(self, request: dict) -> dict | None:
        """One request to one reply, same contract as AnalysisService."""
        # Unconditional: requests that arrive while the pool is still
        # spawning queue FIFO on the start lock, and a later request
        # must queue BEHIND them, not skip ahead on the fast path --
        # otherwise a query pipelined after an open can reach the
        # worker first and find no session.
        await self.start()
        self.requests += 1
        obs.incr("shard.requests")
        rid = request.get("id")
        op = request.get("op")
        if op == "ping":
            return ok_reply(rid, pong=True, workers=self.workers)
        if op == "shutdown":
            self._stopping.set()
            return ok_reply(rid, stopping=True)
        if op == "stats":
            return await self._merged_stats(rid)
        if op not in _ALL_OPS:
            return error_reply(rid, E_UNKNOWN_OP, f"unknown op {op!r}")
        if op == "reload_grammar" and not request.get("doc"):
            # Language-form reload is a broadcast: every worker holds
            # its own override map and its own slice of the session
            # pool, so all of them must recompile.  (The doc form falls
            # through to ordinary single-shard routing below.)
            return await self._broadcast_reload(rid, request)
        doc = request.get("doc")
        if not isinstance(doc, str) or not doc:
            return error_reply(
                rid, E_PROTOCOL, f"{op} needs a non-empty string 'doc'"
            )
        shard = shard_for(doc, self.workers)
        handle = self._handles[shard]
        self.counts["routed"] += 1
        if op == "depends":
            return await self._handle_depends(handle, doc, request)
        reply = await self._forward(handle, request)
        await self._propagate_exports(reply, shard)
        return reply

    # -- cross-shard semantics ------------------------------------------------

    async def _handle_depends(
        self, handle: _Worker, doc: str, request: dict
    ) -> dict:
        """Route a dependency registration, seeding exports across shards.

        When the dependency lives on another shard, its exports are
        fetched from the owning worker first and passed along as a
        ``seed`` -- the dependent's worker must never open or rehydrate
        a document it does not own (single writer per shard).
        """
        on = request.get("on")
        if not isinstance(on, str) or not on:
            return error_reply(
                request.get("id"),
                E_PROTOCOL,
                "depends needs a non-empty string 'on'",
            )
        payload = dict(request)
        source_shard = shard_for(on, self.workers)
        if source_shard != handle.index and "seed" not in payload:
            head_reply = await self._forward(
                self._handles[source_shard],
                {"op": "analyze", "doc": on, "id": None},
            )
            seed = head_reply.get("exports") if head_reply.get("ok") else None
            payload["seed"] = seed or []
            await self._propagate_exports(head_reply, source_shard)
        reply = await self._forward(handle, payload)
        if reply.get("ok"):
            self._rdeps.setdefault(on, set()).add(doc)
        await self._propagate_exports(reply, handle.index)
        return reply

    async def _propagate_exports(self, reply: dict, source_shard: int) -> None:
        """Fan a reply's ``exports_changed`` delta out across shards.

        Invalidations are awaited inline (deterministic: by the time the
        triggering reply reaches the client, every dependent shard has
        queued its re-decision).  Dependents co-sharded with the source
        are skipped -- the owning worker's manager already reached them
        in-process.
        """
        changed = reply.get("exports_changed") if isinstance(reply, dict) else None
        if not changed:
            return
        doc = changed.get("doc")
        dependents = self._rdeps.get(doc)
        if not dependents:
            return
        added = list(changed.get("added") or [])
        removed = list(changed.get("removed") or [])
        with obs.span(
            "shard.invalidate",
            doc=doc,
            added=len(added),
            removed=len(removed),
            dependents=len(dependents),
        ):
            for dependent in sorted(dependents):
                dependent_shard = shard_for(dependent, self.workers)
                if dependent_shard == source_shard:
                    continue
                self.counts["invalidations"] += 1
                obs.incr("shard.invalidations")
                sub_reply = await self._forward(
                    self._handles[dependent_shard],
                    {
                        "op": "invalidate",
                        "doc": dependent,
                        "id": None,
                        "added": added,
                        "removed": removed,
                    },
                )
                await self._propagate_exports(sub_reply, dependent_shard)

    async def _broadcast_reload(self, rid: object, request: dict) -> dict:
        """Fan a language-form ``reload_grammar`` out to every shard.

        Each worker recompiles independently (shared table cache makes
        N-1 of those compiles disk hits), re-parses its own sessions,
        and reports what it reloaded; the merged reply unions the
        session lists.  Post-all-then-await, like the stats fan-out,
        so a reload pipelined after session ops lands after them on
        every shard.
        """
        payload = dict(request)
        payload["id"] = None
        posted = [
            (handle, self._post(handle, payload))
            for handle in self._handles
        ]
        if not self.request_timeout or self.request_timeout <= 0:
            timeout = None
        else:
            timeout = self.request_timeout + _TIMEOUT_GRACE
        merged: dict | None = None
        first_error: dict | None = None
        reloaded: list[str] = []
        invalidated = False
        errors: list[str] = []
        for handle, (iid, future, error) in posted:
            reply = error
            if future is not None:
                try:
                    if timeout is None:
                        reply = await future
                    else:
                        reply = await asyncio.wait_for(future, timeout)
                except asyncio.TimeoutError:
                    handle.pending.pop(iid, None)
                    self.timeouts += 1
                    obs.incr("shard.timeouts")
                    reply = error_reply(
                        rid,
                        E_TIMEOUT,
                        f"no reload reply from shard {handle.index}",
                        pending=True,
                    )
            if reply and reply.get("ok"):
                if merged is None:
                    merged = reply
                reloaded.extend(reply.get("sessions_reloaded") or [])
                invalidated = invalidated or bool(reply.get("invalidated"))
            else:
                if first_error is None and reply is not None:
                    first_error = reply
                detail = (reply or {}).get("message", "no reply")
                errors.append(f"shard {handle.index}: {detail}")
        if merged is None:
            # Every shard failed identically (e.g. the grammar does not
            # compile); surface the first error verbatim.
            if first_error is not None:
                first_error["id"] = rid
                return first_error
            return error_reply(rid, E_WORKER, "reload failed")
        return ok_reply(
            rid,
            language=merged.get("language"),
            table_key=merged.get("table_key"),
            old_table_key=merged.get("old_table_key"),
            invalidated=invalidated,
            sessions_reloaded=sorted(reloaded),
            **({"partial": errors} if errors else {}),
        )

    def _post(
        self, handle: _Worker, request: dict
    ) -> tuple[int, asyncio.Future | None, dict | None]:
        """Synchronous half of a forward: queue the request on the
        worker pipe without yielding, so several posts made back to
        back hit their pipes in program order.  Returns
        ``(iid, future, None)`` or ``(0, None, error_reply)``.
        """
        rid = request.get("id")
        if not handle.alive:
            # Died between EOF and respawn completing: the client
            # retries, the respawned worker rehydrates the session.
            self.counts["forward_errors"] += 1
            return 0, None, error_reply(
                rid,
                E_WORKER,
                f"shard {handle.index} worker restarting; retry",
                retry=True,
            )
        iid = next(self._iid)
        future = asyncio.get_running_loop().create_future()
        handle.pending[iid] = (rid, future)
        payload = dict(request)
        payload["id"] = iid
        try:
            handle.proc.stdin.write((encode(payload) + "\n").encode())
        except (ConnectionError, OSError, RuntimeError):
            handle.pending.pop(iid, None)
            self.counts["forward_errors"] += 1
            return 0, None, error_reply(
                rid,
                E_WORKER,
                f"shard {handle.index} worker pipe broken; retry",
                retry=True,
            )
        return iid, future, None

    async def _forward(
        self, handle: _Worker, request: dict, *, timeout: float | None = None
    ) -> dict:
        rid = request.get("id")
        iid, future, error = self._post(handle, request)
        if error is not None:
            return error
        try:
            await handle.proc.stdin.drain()
        except (ConnectionError, OSError, RuntimeError):
            pass  # exit/respawn handling resolves the pending future
        deferred = request.get("op") == "edit" and bool(request.get("defer"))
        if timeout is None:
            if not self.request_timeout or self.request_timeout <= 0:
                timeout = 0.0
            else:
                timeout = self.request_timeout + _TIMEOUT_GRACE
        if deferred or timeout <= 0:
            # The worker applies its own per-request deadline; a
            # deferred edit legitimately waits for its flush trigger.
            return await future
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            handle.pending.pop(iid, None)
            self.timeouts += 1
            obs.incr("shard.timeouts")
            return error_reply(
                rid,
                E_TIMEOUT,
                f"no reply from shard {handle.index} within {timeout}s; "
                "accepted edits will land with a later reply",
                pending=True,
            )

    # -- stats fan-out --------------------------------------------------------

    async def _merged_stats(self, rid: object) -> dict:
        # Post every scrape before awaiting any reply: the writes land
        # on each pipe in program order, so a stats request pipelined
        # after session ops is answered after them on every shard --
        # and a concurrent shutdown cannot close a pipe between two
        # sequential scrapes.
        posted = [
            (handle, self._post(handle, {"op": "stats", "id": None}))
            for handle in self._handles
        ]
        per_worker: list[dict] = []
        for handle, (iid, future, error) in posted:
            reply = error
            if future is not None:
                try:
                    reply = await asyncio.wait_for(future, _STATS_TIMEOUT)
                except asyncio.TimeoutError:
                    handle.pending.pop(iid, None)
                    reply = None
            if reply and reply.get("ok"):
                stats = reply["stats"]
                handle.last_stats = stats
                per_worker.append(stats)
            elif handle.last_stats is not None:
                stale = dict(handle.last_stats)
                stale["stale"] = True
                per_worker.append(stale)
        merged: dict[str, int] = dict(self._retired_counters)
        table_cache: dict[str, int] = {}
        sessions: dict[str, dict] = {}
        persist: dict | None = None
        requests = self._retired_requests + self.requests
        timeouts = self._retired_timeouts + self.timeouts
        resident = 0
        # Directory-scan values every worker reports identically for the
        # shared store; summing them would multiply by N.
        dirstate = {"snapshots", "bytes", "quarantined_files"}
        for stats in per_worker:
            for key, value in (stats.get("counters") or {}).items():
                if isinstance(value, int):
                    merged[key] = merged.get(key, 0) + value
            for key, value in (stats.get("table_cache") or {}).items():
                if isinstance(value, int):
                    table_cache[key] = table_cache.get(key, 0) + value
            store = stats.get("persist")
            if store:
                if persist is None:
                    persist = {
                        "dir": store.get("dir"),
                        "format": store.get("format"),
                    }
                for key, value in store.items():
                    if not isinstance(value, int) or key == "format":
                        continue
                    if key in dirstate:
                        persist[key] = max(persist.get(key, 0), value)
                    else:
                        persist[key] = persist.get(key, 0) + value
            sessions.update(stats.get("sessions") or {})
            requests += stats.get("requests", 0)
            timeouts += stats.get("timeouts", 0)
            resident += stats.get("resident_nodes", 0)
        received = merged.get("edits_received", 0)
        applied = merged.get("edits_applied", 0)
        return ok_reply(
            rid,
            stats={
                "workers": self.workers,
                "dispatcher": {
                    "requests": self.requests,
                    "timeouts": self.timeouts,
                    **self.counts,
                    "shards": [
                        {
                            "shard": handle.index,
                            "alive": handle.alive,
                            "generation": handle.generation,
                            "pid": handle.proc.pid if handle.proc else None,
                            "pending": len(handle.pending),
                        }
                        for handle in self._handles
                    ],
                },
                "per_worker": per_worker,
                "sessions": sessions,
                "persist": persist,
                "counters": merged,
                "table_cache": table_cache,
                "resident_nodes": resident,
                "coalesce_ratio": (received / applied) if applied else None,
                "requests": requests,
                "timeouts": timeouts,
            },
        )
