"""Wire protocol for the analysis service: JSON lines, both directions.

Every request and reply is one JSON object on one line.  Requests carry
``op`` (the verb), usually ``doc`` (the session name), and optionally
``id`` -- an opaque client token echoed verbatim in the matching reply
so clients can pipeline requests and match replies out of order.

Requests::

    {"op": "open",  "id": 1, "doc": "a.calc", "language": "calc",
     "text": "x = 1;"}
    {"op": "edit",  "id": 2, "doc": "a.calc",
     "edits": [{"at": 4, "remove": 1, "insert": "9"}],
     "defer": false, "echo_text": true}
    {"op": "parse", "id": 3, "doc": "a.calc"}
    {"op": "query", "id": 4, "doc": "a.calc"}
    {"op": "analyze", "id": 5, "doc": "a.minic"}
    {"op": "depends", "id": 6, "doc": "a.minic", "on": "types.minic"}
    {"op": "invalidate", "id": 7, "doc": "a.minic",
     "added": ["Temp"], "removed": []}
    {"op": "snapshot", "id": 8, "doc": "a.calc"}
    {"op": "close", "id": 9, "doc": "a.calc"}
    {"op": "stats", "id": 10}
    {"op": "ping",  "id": 11}
    {"op": "shutdown", "id": 12}
    {"op": "reload_grammar", "id": 13, "language": "calc",
     "grammar": "%token NUM /[0-9]+/ ..."}
    {"op": "reload_grammar", "id": 14, "doc": "a.calc",
     "grammar": "..."}

**Semantics ops.**  ``analyze`` activates incremental typedef analysis
on a session: the reply (and every subsequent edit/parse reply) carries
``sem_decisions``/``sem_unresolved``/``sem_redecisions`` plus the
cumulative ``sem_state`` summary and the session's ``exports`` (typedef
names visible at top level).  ``depends`` declares a cross-document
edge: ``doc`` imports the exported typedefs of ``on`` (optionally
seeded explicitly with ``"seed": [...]`` -- the sharded dispatcher uses
this to keep each session single-writer).  After that, an edit in
``on`` whose exports change makes the service push an ``invalidate``
delta into each dependent, re-deciding only the choice points that
consulted the changed names; ``invalidate`` is also accepted directly
from clients driving their own project graph.

**Grammar hot-reload.**  ``reload_grammar`` recompiles a grammar
without restarting the service, with compile-first semantics: a source
that does not compile is a ``protocol`` error and changes nothing.  The
*language form* (``"language": NAME``) rebinds a language name
service-wide -- future opens resolve to the new grammar, the
superseded parse table is evicted from the table cache, and every open
session using that name is re-parsed from its current text under the
new tables (a rung-2 rebuild: old parse states are meaningless under
new tables).  The reply carries ``table_key``/``old_table_key`` (the
new and previous table-cache fingerprints), ``invalidated`` (whether a
stale cache entry was actually evicted), and ``sessions_reloaded``
(sorted session names).  The *doc form* (``"doc": NAME``) retargets a
single session and answers like a ``parse`` with ``"reloaded": true``
plus the new ``table_key``.  Reloaded sessions snapshot immediately
with the grammar source embedded, so a rehydration anywhere (same
process, respawned shard worker) reconstructs the reloaded grammar
byte-identically.  On the sharded backend the language form broadcasts
to every worker and the reply unions their ``sessions_reloaded``.

Replies are ``{"id": ..., "ok": true, ...fields}`` or
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}``.
Error codes are the :data:`E_*` constants below; ``backpressure`` and
``timeout`` are *flow-control* replies, not failures -- the session is
healthy and the client should retry (``backpressure``) or expect the
work to land later (``timeout`` with ``"pending": true``).

**Recovery status.**  When the server runs with a state directory, a
session op whose ``doc`` was evicted or lost to a restart may be
answered by a lazily *rehydrated* session; such replies carry
``"rehydrated": true`` so clients can differentially verify their
buffer (``sha256``) against the recovered text.  ``snapshot`` forces a
durable snapshot now and replies with ``"persisted": true/false``;
``no-session`` then means genuinely unknown -- never opened, closed, or
evicted with no snapshot to recover from.

**Edit coalescing algebra.**  An :class:`EditSpec` is one textual
splice; a list of specs is applied *sequentially* (each offset is
relative to the text produced by its predecessors).  Two adjacent specs
merge when the second continues or retracts the first -- the two
gestures an editor actually produces in a burst:

* *append*: ``b`` starts exactly where ``a``'s insertion ended --
  ``a=(o, r, "ab")`` then ``b=(o+2, r', "cd")`` becomes
  ``(o, r + r', "abcd")``;
* *backspace*: ``b`` deletes a suffix of ``a``'s insertion --
  ``a=(o, r, "abcd")`` then ``b=(o+2, 2, "")`` becomes ``(o, r, "ab")``.

Both rules preserve the final text exactly (the differential suite
checks this byte-for-byte); anything else stays a separate spec.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

# Error codes.
E_PROTOCOL = "protocol"  # malformed request (bad JSON, missing field)
E_UNKNOWN_OP = "unknown-op"
E_NO_SESSION = "no-session"  # unknown doc name (possibly evicted)
E_EXISTS = "exists"  # open of an already-open doc name
E_CAPACITY = "capacity"  # session pool full, nothing evictable
E_BACKPRESSURE = "backpressure"  # session queue full; retry later
E_TIMEOUT = "timeout"  # reply deadline passed; work may still land
E_EDIT = "bad-edit"  # edit range outside the document
E_ANALYSIS = "analysis"  # degradation ladder exhausted
E_CLOSED = "closed"  # session shut down while request was queued
# Sharded backend only: the worker process owning this document died
# mid-request and is being respawned.  Flow control, not failure: the
# session is durable (snapshot store), so the client retries and the
# fresh worker rehydrates it; at most the in-flight batch is lost.
E_WORKER = "worker-restart"


class ProtocolError(ValueError):
    """A request that cannot even be dispatched."""


@dataclass(frozen=True)
class EditSpec:
    """One textual splice: remove ``remove`` chars at ``at``, insert text."""

    at: int
    remove: int
    insert: str

    def to_json(self) -> dict:
        return {"at": self.at, "remove": self.remove, "insert": self.insert}

    @classmethod
    def from_json(cls, obj: object) -> "EditSpec":
        if not isinstance(obj, dict):
            raise ProtocolError(f"edit spec must be an object, got {obj!r}")
        try:
            at = obj["at"]
            remove = obj.get("remove", 0)
            insert = obj.get("insert", "")
        except (TypeError, KeyError) as error:
            raise ProtocolError(f"bad edit spec {obj!r}") from error
        if (
            not isinstance(at, int)
            or not isinstance(remove, int)
            or not isinstance(insert, str)
            or at < 0
            or remove < 0
        ):
            raise ProtocolError(f"bad edit spec {obj!r}")
        return cls(at, remove, insert)

    def apply(self, text: str) -> str:
        """Apply to a plain string; raises ValueError outside the range."""
        if self.at + self.remove > len(text):
            raise ValueError(
                f"edit at {self.at}+{self.remove} outside document "
                f"of length {len(text)}"
            )
        return text[: self.at] + self.insert + text[self.at + self.remove :]


def coalesce(a: EditSpec, b: EditSpec) -> EditSpec | None:
    """Merge ``b`` (applied after ``a``) into ``a``, or None if disjoint."""
    if b.at == a.at + len(a.insert):
        # append: b continues exactly where a's insertion ended
        return EditSpec(a.at, a.remove + b.remove, a.insert + b.insert)
    if (
        not b.insert
        and b.at + b.remove == a.at + len(a.insert)
        and b.remove <= len(a.insert)
        and b.at >= a.at
    ):
        # backspace: b retracts a suffix of a's insertion
        return EditSpec(a.at, a.remove, a.insert[: len(a.insert) - b.remove])
    return None


def coalesce_specs(specs: list[EditSpec]) -> list[EditSpec]:
    """Greedy left fold of :func:`coalesce` over a sequential spec list."""
    merged: list[EditSpec] = []
    for spec in specs:
        if merged:
            combined = coalesce(merged[-1], spec)
            if combined is not None:
                merged[-1] = combined
                continue
        merged.append(spec)
    return merged


# -- framing ------------------------------------------------------------------


def encode(obj: dict) -> str:
    """One reply/request as a single JSON line (no trailing newline)."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True)


def decode_line(line: str) -> dict:
    """Parse one request line; raises :class:`ProtocolError` on garbage."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"bad JSON: {error}") from error
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request missing string 'op'")
    return obj


def ok_reply(rid: object, **fields) -> dict:
    reply = {"id": rid, "ok": True}
    reply.update(fields)
    return reply


def error_reply(rid: object, code: str, message: str, **fields) -> dict:
    reply = {"id": rid, "ok": False, "error": {"code": code, "message": message}}
    reply.update(fields)
    return reply


def text_digest(text: str) -> str:
    """Stable content digest replies carry instead of (or beside) text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
