"""One shard of the process pool: ``python -m repro.service.worker``.

A worker is nothing exotic -- it is the ordinary single-process
:class:`~repro.service.server.AnalysisService` speaking the ordinary
JSON-lines protocol, on the stdio pipes its
:class:`~repro.service.pool.ShardDispatcher` parent holds.  Everything
the single-process service earned in PRs 1-5 -- the degradation ladder,
bounded queues, LRU eviction, write-ahead durable snapshots, lazy
rehydration -- therefore applies per shard with no new code paths.

The only additions are identity and sharing:

* ``--shard/--shards`` tag this worker's ``stats`` replies so the
  dispatcher's merged view can attribute counters per shard;
* ``--state-dir`` points at the *shared* snapshot store.  The
  dispatcher routes each document to exactly one live worker, and the
  store's cross-process file locks make even a misrouted double-writer
  safe, so all shards can share one directory -- which is what lets a
  respawned (or re-count-rebalanced) worker rehydrate sessions some
  other process persisted;
* the parse-table cache (`repro.tables.cache`) is already shared on
  disk: the first worker to compile a grammar publishes the table, and
  every other worker warm-starts from it (asserted by the
  cross-process cache test).
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys

from .server import AnalysisService


class ShardWorker(AnalysisService):
    """AnalysisService that stamps its shard identity into stats."""

    def __init__(self, *, shard: int = 0, shards: int = 1, **kwargs) -> None:
        super().__init__(**kwargs)
        self.shard = shard
        self.shards = shards

    async def handle(self, request: dict) -> dict | None:
        reply = await super().handle(request)
        if (
            reply is not None
            and reply.get("ok")
            and request.get("op") == "stats"
        ):
            reply["stats"]["worker"] = {
                "shard": self.shard,
                "shards": self.shards,
                "pid": os.getpid(),
            }
        return reply


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.service.worker",
        description="one shard of the repro analysis-service process pool",
    )
    parser.add_argument("--shard", type=int, default=0)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--max-sessions", type=int, default=32)
    parser.add_argument("--max-nodes", type=int, default=2_000_000)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--debounce-ms", type=float, default=0.0)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--state-dir", default=None)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    service = ShardWorker(
        shard=args.shard,
        shards=args.shards,
        max_sessions=args.max_sessions,
        max_resident_nodes=args.max_nodes,
        queue_limit=args.queue_limit,
        debounce=args.debounce_ms / 1e3,
        request_timeout=args.timeout,
        state_dir=args.state_dir or None,
    )
    asyncio.run(service.serve_stdio())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
