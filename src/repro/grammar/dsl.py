"""A yacc-like textual grammar language with regular right parts.

The DSL plays the role of the paper's language-description input (their
modified bison): it declares tokens (with lexical patterns), precedence
levels (static syntactic filters, section 4.1), the start symbol, and
productions whose right-hand sides may use the EBNF operators ``*``,
``+``, ``?``, grouping and separated repetition.

Example::

    %token NUM /[0-9]+/
    %token ID  /[a-zA-Z_][a-zA-Z0-9_]*/
    %ignore /[ \\t\\n]+/
    %left '+' '-'
    %left '*' '/'
    %start program

    program : stmt* ;
    stmt    : expr ';'          @expr_stmt
            | ID '=' expr ';'   @assign
            ;
    expr    : expr '+' expr | expr '-' expr
            | expr '*' expr | expr '/' expr
            | '(' expr ')' | NUM | ID
            ;

Quoted literals name themselves as terminals (the terminal for ``'+'`` is
the string ``+``).  ``@name`` attaches a tag to the alternative, visible on
the resulting :class:`~repro.grammar.cfg.Production` -- disambiguation
filters use tags to identify alternatives.  ``item ** ','`` is a
zero-or-more comma-separated list, ``item ++ ','`` one-or-more; both are
associative sequences eligible for balanced representation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .cfg import Assoc, Grammar, GrammarError, PrecedenceLevel
from .ebnf import (
    Alt,
    ExtendedAlternative,
    ExtendedRule,
    Opt,
    Plus,
    Rhs,
    Seq,
    Star,
    Sym,
    expand_extended_rules,
)


@dataclass
class GrammarSpec:
    """The result of parsing a grammar description.

    Attributes:
        grammar: the expanded plain CFG.
        token_defs: ordered ``(name, pattern)`` pairs from ``%token``
            declarations carrying a pattern.
        keywords: ordered literal terminals (they lex as themselves, with
            identifier-shaped literals taking priority over ``%token``
            patterns, mirroring keyword handling in real lexers).
        ignore_patterns: patterns from ``%ignore`` (whitespace, comments).
    """

    grammar: Grammar
    token_defs: list[tuple[str, str]] = field(default_factory=list)
    keywords: list[str] = field(default_factory=list)
    ignore_patterns: list[str] = field(default_factory=list)


class DslError(GrammarError):
    """Raised on malformed grammar-DSL input, with line information."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<directive>%[a-z]+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<tag>@[A-Za-z_][A-Za-z0-9_]*)
  | (?P<literal>'(?:\\.|[^'\\])*')
  | (?P<regex>/(?:\\.|[^/\\])+/)
  | (?P<dstar>\*\*)
  | (?P<dplus>\+\+)
  | (?P<punct>[:|;()*+?])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Tok:
    kind: str
    value: str
    line: int


def _lex_dsl(text: str) -> list[_Tok]:
    tokens: list[_Tok] = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise DslError(f"unexpected character {text[pos]!r}", line)
        line += text.count("\n", pos, match.end())
        kind = match.lastgroup or ""
        value = match.group()
        pos = match.end()
        if kind in ("ws", "comment"):
            continue
        tokens.append(_Tok(kind, value, line))
    tokens.append(_Tok("eof", "", line))
    return tokens


def _unquote(literal: str) -> str:
    body = literal[1:-1]
    return re.sub(r"\\(.)", r"\1", body)


class _DslParser:
    """Recursive-descent parser for the grammar DSL."""

    def __init__(self, text: str) -> None:
        self.tokens = _lex_dsl(text)
        self.pos = 0
        self.token_defs: list[tuple[str, str]] = []
        self.keywords: list[str] = []
        self.ignore_patterns: list[str] = []
        self.precedence: list[PrecedenceLevel] = []
        self.rules: list[ExtendedRule] = []
        self.start: str | None = None
        self.declared_tokens: list[str] = []
        self._rule_lines: dict[str, int] = {}
        self._prec_lines: dict[str, int] = {}
        self._start_line = 0

    # -- token helpers -----------------------------------------------------

    @property
    def cur(self) -> _Tok:
        return self.tokens[self.pos]

    def advance(self) -> _Tok:
        tok = self.cur
        self.pos += 1
        return tok

    def expect(self, kind: str, value: str | None = None) -> _Tok:
        tok = self.cur
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value if value is not None else kind
            raise DslError(f"expected {want!r}, found {tok.value!r}", tok.line)
        return self.advance()

    def at_punct(self, value: str) -> bool:
        return self.cur.kind == "punct" and self.cur.value == value

    # -- top level ---------------------------------------------------------

    def parse(self) -> GrammarSpec:
        while self.cur.kind != "eof":
            if self.cur.kind == "directive":
                self._directive()
            elif self.cur.kind == "ident":
                self._rule()
            else:
                raise DslError(
                    f"expected rule or directive, found {self.cur.value!r}",
                    self.cur.line,
                )
        if not self.rules:
            raise DslError("grammar has no rules", self.cur.line)
        start = self.start or self.rules[0].lhs
        lhss = {rule.lhs for rule in self.rules}
        if self.start is not None and self.start not in lhss:
            raise DslError(
                f"%start symbol {self.start!r} has no rule",
                self._start_line,
            )
        terminals = set(self.declared_tokens) | set(self.keywords)
        referenced = self._referenced_symbols()
        for sym in referenced:
            if sym not in lhss and sym not in terminals:
                terminals.add(sym)
        grammar = expand_extended_rules(
            self.rules, terminals, start, precedence=self.precedence
        )
        return GrammarSpec(
            grammar=grammar,
            token_defs=self.token_defs,
            keywords=self.keywords,
            ignore_patterns=self.ignore_patterns,
        )

    def _referenced_symbols(self) -> set[str]:
        seen: set[str] = set()

        def walk(expr: Rhs) -> None:
            if isinstance(expr, Sym):
                seen.add(expr.name)
            elif isinstance(expr, Seq):
                for item in expr.items:
                    walk(item)
            elif isinstance(expr, Alt):
                for option in expr.options:
                    walk(option)
            elif isinstance(expr, Opt):
                walk(expr.item)
            elif isinstance(expr, (Star, Plus)):
                walk(expr.item)
                if expr.separator is not None:
                    walk(expr.separator)

        for rule in self.rules:
            for alternative in rule.alternatives:
                walk(alternative.rhs)
        return seen

    # -- directives ----------------------------------------------------------

    def _directive(self) -> None:
        tok = self.advance()
        name = tok.value
        if name == "%token":
            ident = self.expect("ident")
            self.declared_tokens.append(ident.value)
            if self.cur.kind == "regex":
                pattern = self.advance().value[1:-1].replace("\\/", "/")
                self.token_defs.append((ident.value, pattern))
        elif name == "%ignore":
            pattern = self.expect("regex").value[1:-1].replace("\\/", "/")
            self.ignore_patterns.append(pattern)
        elif name in ("%left", "%right", "%nonassoc"):
            assoc = Assoc(name[1:])
            symbols: list[str] = []
            while self.cur.kind in ("ident", "literal"):
                # An identifier followed by ':' starts the next rule, not a
                # precedence symbol (the DSL has no statement terminator).
                nxt = self.tokens[self.pos + 1]
                if self.cur.kind == "ident" and nxt.kind == "punct" and nxt.value == ":":
                    break
                symbol = self._terminal_name(self.advance())
                first = self._prec_lines.get(symbol)
                if first is not None:
                    raise DslError(
                        f"{symbol!r} already has a precedence"
                        f" (declared at line {first})",
                        tok.line,
                    )
                self._prec_lines[symbol] = tok.line
                symbols.append(symbol)
            if not symbols:
                raise DslError(f"{name} needs at least one symbol", tok.line)
            self.precedence.append(
                PrecedenceLevel(len(self.precedence) + 1, assoc, tuple(symbols))
            )
        elif name == "%start":
            self.start = self.expect("ident").value
            self._start_line = tok.line
        else:
            raise DslError(f"unknown directive {name!r}", tok.line)

    def _terminal_name(self, tok: _Tok) -> str:
        if tok.kind == "literal":
            text = _unquote(tok.value)
            if text not in self.keywords:
                self.keywords.append(text)
            return text
        return tok.value

    # -- rules -----------------------------------------------------------------

    def _rule(self) -> None:
        tok = self.expect("ident")
        lhs = tok.value
        first = self._rule_lines.get(lhs)
        if first is not None:
            raise DslError(
                f"duplicate rule for {lhs!r}"
                f" (first defined at line {first});"
                " add alternatives with '|' instead",
                tok.line,
            )
        self._rule_lines[lhs] = tok.line
        self.expect("punct", ":")
        rule = ExtendedRule(lhs)
        rule.alternatives.append(self._alternative())
        while self.at_punct("|"):
            self.advance()
            rule.alternatives.append(self._alternative())
        self.expect("punct", ";")
        self.rules.append(rule)

    def _alternative(self) -> ExtendedAlternative:
        items: list[Rhs] = []
        while self._at_factor_start():
            items.append(self._factor())
        prec_symbol: str | None = None
        tags: list[str] = []
        while True:
            if self.cur.kind == "directive" and self.cur.value == "%prec":
                self.advance()
                tok = self.advance()
                if tok.kind not in ("ident", "literal"):
                    raise DslError("%prec needs a terminal", tok.line)
                prec_symbol = self._terminal_name(tok)
            elif self.cur.kind == "tag":
                tags.append(self.advance().value[1:])
            else:
                break
        rhs: Rhs = Seq(tuple(items)) if len(items) != 1 else items[0]
        return ExtendedAlternative(rhs, prec_symbol=prec_symbol, tags=tuple(tags))

    def _at_factor_start(self) -> bool:
        return (
            self.cur.kind in ("ident", "literal")
            or self.at_punct("(")
        )

    def _factor(self) -> Rhs:
        primary = self._primary()
        while True:
            if self.at_punct("*"):
                self.advance()
                primary = Star(primary)
            elif self.at_punct("+"):
                self.advance()
                primary = Plus(primary)
            elif self.at_punct("?"):
                self.advance()
                primary = Opt(primary)
            elif self.cur.kind == "dstar":
                self.advance()
                primary = Star(primary, separator=self._separator())
            elif self.cur.kind == "dplus":
                self.advance()
                primary = Plus(primary, separator=self._separator())
            else:
                return primary

    def _separator(self) -> Rhs:
        tok = self.advance()
        if tok.kind not in ("ident", "literal"):
            raise DslError("separator must be a symbol or literal", tok.line)
        return Sym(self._terminal_name(tok))

    def _primary(self) -> Rhs:
        tok = self.advance()
        if tok.kind == "ident":
            return Sym(tok.value)
        if tok.kind == "literal":
            return Sym(self._terminal_name(tok))
        if tok.kind == "punct" and tok.value == "(":
            options = [self._group_alternative()]
            while self.at_punct("|"):
                self.advance()
                options.append(self._group_alternative())
            self.expect("punct", ")")
            if len(options) == 1:
                return options[0]
            return Alt(tuple(options))
        raise DslError(f"unexpected {tok.value!r} in rule body", tok.line)

    def _group_alternative(self) -> Rhs:
        items: list[Rhs] = []
        while self._at_factor_start():
            items.append(self._factor())
        if len(items) == 1:
            return items[0]
        return Seq(tuple(items))


def parse_grammar_spec(text: str) -> GrammarSpec:
    """Parse a grammar description into a :class:`GrammarSpec`."""
    return _DslParser(text).parse()


def parse_grammar(text: str) -> Grammar:
    """Parse a grammar description, returning only the expanded CFG."""
    return parse_grammar_spec(text).grammar
