"""Regular right parts (EBNF operators) and their expansion to plain CFGs.

The paper (section 3.4) uses an *extended* context-free grammar so language
designers can declare associative sequences explicitly; the system is then
free to represent such sequences as balanced binary trees, guaranteeing
logarithmic access during incremental updates.

This module provides the right-hand-side expression AST used by the grammar
DSL (`repro.grammar.dsl`) and the lowering from extended productions to
plain :class:`~repro.grammar.cfg.Production` objects.  Productions created
for ``*`` and ``+`` operators are flagged ``is_sequence=True`` so that the
DAG layer may rebalance the spines they generate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .cfg import Grammar, GrammarError, PrecedenceLevel, Production


class Rhs:
    """Base class for right-hand-side expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Sym(Rhs):
    """A single terminal or nonterminal reference."""

    name: str


@dataclass(frozen=True)
class Seq(Rhs):
    """Concatenation of sub-expressions."""

    items: tuple[Rhs, ...]


@dataclass(frozen=True)
class Alt(Rhs):
    """Alternation between sub-expressions (inside a group)."""

    options: tuple[Rhs, ...]


@dataclass(frozen=True)
class Star(Rhs):
    """Zero-or-more repetition: an associative sequence."""

    item: Rhs
    separator: Rhs | None = None


@dataclass(frozen=True)
class Plus(Rhs):
    """One-or-more repetition: an associative sequence."""

    item: Rhs
    separator: Rhs | None = None


@dataclass(frozen=True)
class Opt(Rhs):
    """Zero-or-one occurrence."""

    item: Rhs


@dataclass(frozen=True)
class ExtendedAlternative:
    """One alternative of an extended production, with its annotations."""

    rhs: Rhs
    prec_symbol: str | None = None
    tags: tuple[str, ...] = ()


@dataclass
class ExtendedRule:
    """A nonterminal and all its extended alternatives."""

    lhs: str
    alternatives: list[ExtendedAlternative] = field(default_factory=list)


class _Expander:
    """Lowers extended rules to plain productions.

    Auxiliary nonterminals are named ``<lhs>@seq<N>`` / ``<lhs>@grp<N>`` /
    ``<lhs>@opt<N>``; the ``@`` guarantees no collision with user symbols
    (the DSL forbids ``@`` in identifiers).
    """

    def __init__(self, known_symbols: set[str]) -> None:
        self.known = set(known_symbols)
        self.user_productions: list[
            tuple[str, tuple[str, ...], str | None, bool, tuple[str, ...]]
        ] = []
        self.aux_productions: list[
            tuple[str, tuple[str, ...], str | None, bool, tuple[str, ...]]
        ] = []
        self._counter = 0

    def fresh(self, lhs: str, kind: str) -> str:
        self._counter += 1
        name = f"{lhs}@{kind}{self._counter}"
        self.known.add(name)
        return name

    def add(
        self,
        lhs: str,
        rhs: Sequence[str],
        prec: str | None = None,
        is_sequence: bool = False,
        tags: tuple[str, ...] = (),
        user: bool = False,
    ) -> None:
        target = self.user_productions if user else self.aux_productions
        target.append((lhs, tuple(rhs), prec, is_sequence, tags))

    def flatten(self, lhs: str, expr: Rhs) -> list[str]:
        """Reduce an expression to a flat symbol list, adding aux rules."""
        if isinstance(expr, Sym):
            return [expr.name]
        if isinstance(expr, Seq):
            out: list[str] = []
            for item in expr.items:
                out.extend(self.flatten(lhs, item))
            return out
        if isinstance(expr, Alt):
            aux = self.fresh(lhs, "grp")
            for option in expr.options:
                self.add(aux, self.flatten(lhs, option))
            return [aux]
        if isinstance(expr, Opt):
            aux = self.fresh(lhs, "opt")
            self.add(aux, ())
            self.add(aux, self.flatten(lhs, expr.item))
            return [aux]
        if isinstance(expr, (Star, Plus)):
            return [self._sequence(lhs, expr)]
        raise GrammarError(f"unknown rhs expression: {expr!r}")

    def _sequence(self, lhs: str, expr: Star | Plus) -> str:
        """Expand a repetition into left-recursive sequence productions.

        ``X*``   ->  aux: <empty> | aux X
        ``X+``   ->  aux: X | aux X
        With a separator ``X* sep ,`` -> aux: <empty> | X | aux ',' X
        (the empty alternative is omitted for ``+``).
        """
        element = self.flatten(lhs, expr.item)
        separator = (
            self.flatten(lhs, expr.separator) if expr.separator is not None else []
        )
        aux = self.fresh(lhs, "seq")
        if isinstance(expr, Star):
            self.add(aux, (), is_sequence=True)
            if separator:
                # A separated star needs a distinct non-empty spine so the
                # separator never dangles: aux: eps | spine
                spine = self.fresh(lhs, "seq")
                self.add(spine, element, is_sequence=True)
                self.add(spine, [spine, *separator, *element], is_sequence=True)
                self.add(aux, [spine], is_sequence=True)
            else:
                self.add(aux, [aux, *element], is_sequence=True)
        else:
            self.add(aux, element, is_sequence=True)
            self.add(aux, [aux, *separator, *element], is_sequence=True)
        return aux


def expand_extended_rules(
    rules: Sequence[ExtendedRule],
    terminals: set[str],
    start: str,
    precedence: Sequence[PrecedenceLevel] = (),
) -> Grammar:
    """Expand extended rules into a plain :class:`Grammar`.

    Productions for the user's alternatives appear before auxiliary
    sequence/group productions of the same rule, in declaration order, so
    production indices are stable across runs.
    """
    known = terminals | {rule.lhs for rule in rules}
    expander = _Expander(known)
    for rule in rules:
        for alternative in rule.alternatives:
            rhs = expander.flatten(rule.lhs, alternative.rhs)
            expander.add(
                rule.lhs,
                rhs,
                prec=alternative.prec_symbol,
                tags=alternative.tags,
                user=True,
            )
    ordered = expander.user_productions + expander.aux_productions
    productions = [
        Production(i, lhs, rhs, prec_symbol=prec, is_sequence=seq, tags=tags)
        for i, (lhs, rhs, prec, seq, tags) in enumerate(ordered)
    ]
    return Grammar(productions, terminals, start, precedence=precedence)
