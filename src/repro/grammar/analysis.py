"""Classic grammar analyses: nullability, FIRST and FOLLOW sets.

These feed both LALR table construction (`repro.tables`) and the
nonterminal-lookahead reductions used by the incremental parsers
(paper section 3.2: reductions indexed by a nonterminal are valid when
every terminal in FIRST(N) selects the same action and N is not nullable).
"""

from __future__ import annotations

from typing import Iterable

from .cfg import EOF, Grammar


class GrammarAnalysis:
    """Nullable / FIRST / FOLLOW computed by fixpoint iteration.

    The object is immutable after construction; all sets are exposed as
    frozensets keyed by symbol name.
    """

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self.nullable: frozenset[str] = self._compute_nullable()
        self.first: dict[str, frozenset[str]] = self._compute_first()
        self.follow: dict[str, frozenset[str]] = self._compute_follow()

    # -- nullability -------------------------------------------------------

    def _compute_nullable(self) -> frozenset[str]:
        nullable: set[str] = set()
        changed = True
        while changed:
            changed = False
            for prod in self.grammar.productions:
                if prod.lhs in nullable:
                    continue
                if all(sym in nullable for sym in prod.rhs):
                    nullable.add(prod.lhs)
                    changed = True
        return frozenset(nullable)

    def is_nullable(self, symbol: str) -> bool:
        """True when the symbol derives the empty string."""
        return symbol in self.nullable

    def sequence_nullable(self, symbols: Iterable[str]) -> bool:
        """True when every symbol in the sequence is nullable."""
        return all(sym in self.nullable for sym in symbols)

    # -- FIRST --------------------------------------------------------------

    def _compute_first(self) -> dict[str, frozenset[str]]:
        first: dict[str, set[str]] = {
            t: {t} for t in self.grammar.terminals
        }
        for nt in self.grammar.nonterminals:
            first[nt] = set()
        changed = True
        while changed:
            changed = False
            for prod in self.grammar.productions:
                target = first[prod.lhs]
                before = len(target)
                for sym in prod.rhs:
                    target |= first[sym]
                    if sym not in self.nullable:
                        break
                if len(target) != before:
                    changed = True
        return {sym: frozenset(s) for sym, s in first.items()}

    def first_of(self, symbol: str) -> frozenset[str]:
        """FIRST of a single symbol."""
        return self.first[symbol]

    def first_of_sequence(
        self, symbols: Iterable[str], tail: Iterable[str] = ()
    ) -> frozenset[str]:
        """FIRST of a symbol sequence, falling through to ``tail`` terminals
        when the whole sequence is nullable."""
        result: set[str] = set()
        for sym in symbols:
            result |= self.first[sym]
            if sym not in self.nullable:
                return frozenset(result)
        result |= set(tail)
        return frozenset(result)

    # -- FOLLOW --------------------------------------------------------------

    def _compute_follow(self) -> dict[str, frozenset[str]]:
        follow: dict[str, set[str]] = {
            nt: set() for nt in self.grammar.nonterminals
        }
        follow[self.grammar.start].add(EOF)
        changed = True
        while changed:
            changed = False
            for prod in self.grammar.productions:
                trailer: set[str] = set(follow[prod.lhs])
                for sym in reversed(prod.rhs):
                    if sym in self.grammar.nonterminals:
                        before = len(follow[sym])
                        follow[sym] |= trailer
                        if len(follow[sym]) != before:
                            changed = True
                        if sym in self.nullable:
                            trailer = trailer | self.first[sym]
                        else:
                            trailer = set(self.first[sym])
                    else:
                        trailer = {sym}
        return {nt: frozenset(s) for nt, s in follow.items()}

    def follow_of(self, nonterminal: str) -> frozenset[str]:
        """FOLLOW of a nonterminal (used by SLR tables and diagnostics)."""
        return self.follow[nonterminal]
