"""Grammar model: CFGs, regular right parts, analyses, and the grammar DSL."""

from .analysis import GrammarAnalysis
from .cfg import (
    EOF,
    EPSILON,
    START,
    Assoc,
    Grammar,
    GrammarError,
    PrecedenceLevel,
    Production,
    dump_grammar,
)
from .dsl import DslError, GrammarSpec, parse_grammar, parse_grammar_spec
from .ebnf import (
    Alt,
    ExtendedAlternative,
    ExtendedRule,
    Opt,
    Plus,
    Seq,
    Star,
    Sym,
    expand_extended_rules,
)

__all__ = [
    "EOF",
    "EPSILON",
    "START",
    "Assoc",
    "Grammar",
    "GrammarError",
    "GrammarAnalysis",
    "PrecedenceLevel",
    "Production",
    "dump_grammar",
    "DslError",
    "GrammarSpec",
    "parse_grammar",
    "parse_grammar_spec",
    "Alt",
    "ExtendedAlternative",
    "ExtendedRule",
    "Opt",
    "Plus",
    "Seq",
    "Star",
    "Sym",
    "expand_extended_rules",
]
