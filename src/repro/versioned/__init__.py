"""Self-versioning documents: text, tokens, and parse DAG kept in sync."""

from .document import AnalysisReport, Document, DocumentError, Edit

__all__ = ["AnalysisReport", "Document", "DocumentError", "Edit"]
