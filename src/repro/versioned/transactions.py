"""Transactional snapshots: rollback to the last good document version.

Incremental reparsing mutates the previous version's tree *in place*:
subtree shifts overwrite recorded parse states, the node-retention pool
hands old production nodes to new reductions, local ambiguity packing
appends alternatives to existing choice nodes, commit re-adopts parent
pointers along fresh structure, and balanced-sequence repair splices
directly into the committed spine.  An exception anywhere in that
pipeline would otherwise leave the document half-mutated -- parsed-tree
bookkeeping out of sync with the text, parent chains pointing into
discarded structure.

:class:`DocumentSnapshot` makes the whole pipeline transactional the
simple, airtight way: capture every mutable field of every reachable
node (plus the document's scalar state) before the attempt, write it all
back on failure.  The capture is O(tree); the restore runs only on the
failure path.  A mutation journal recording first-touch old values would
cut the capture to O(touched region) -- the right next step for the
production-scale goal -- but a value snapshot is trivially correct,
which is what a rollback primitive must be first.

Snapshots are value-faithful: node *identities* survive rollback, so
annotations, the token registry, and any outstanding edit log keep
working after a restore exactly as before the failed attempt.
"""

from __future__ import annotations

from ..dag.nodes import ErrorNode, Node, ProductionNode, SymbolNode
from ..dag.sequences import SequenceNode

# Record layout: (node, state, parent, n_terms, structure) where
# ``structure`` is the node-kind-specific mutable link bundle.
_Record = tuple


class DocumentSnapshot:
    """A restorable snapshot of a Document's complete analysis state."""

    __slots__ = (
        "text",
        "version",
        "tokens",
        "token_nodes",
        "removed_nodes",
        "edit_log",
        "fresh_nodes",
        "last_result",
        "tree",
        "records",
    )

    def __init__(self, document) -> None:
        doc = document
        self.text: str = doc.text
        self.version: int = doc.version
        self.tokens = list(doc.tokens)
        self.token_nodes = dict(doc._token_nodes)
        self.removed_nodes = list(doc._removed_nodes)
        self.edit_log = list(doc._edit_log)
        self.fresh_nodes = dict(doc._fresh_nodes)
        self.last_result = doc.last_result
        self.tree = doc.tree
        self.records: list[_Record] = (
            _capture(doc.tree) if doc.tree is not None else []
        )

    def restore(self, document) -> None:
        """Write the snapshot back; the document forgets the failed attempt."""
        doc = document
        doc.text = self.text
        doc.version = self.version
        doc.tokens = list(self.tokens)
        doc._token_nodes = dict(self.token_nodes)
        doc._removed_nodes = list(self.removed_nodes)
        doc._edit_log = list(self.edit_log)
        doc._fresh_nodes = dict(self.fresh_nodes)
        doc.last_result = self.last_result
        doc.tree = self.tree
        for node, state, parent, n_terms, structure in self.records:
            node.state = state
            node.parent = parent
            node.n_terms = n_terms
            if structure is None:
                continue
            if isinstance(node, (ProductionNode, ErrorNode)):
                node._kids = structure
            elif isinstance(node, SymbolNode):
                node._alternatives = list(structure)
            elif isinstance(node, SequenceNode):
                node._root = structure


def _capture(root: Node) -> list[_Record]:
    """Mutable state of every node reachable from ``root``, once each.

    Sequence parts are persistent (their kid tuples, item counts, and
    depths are fixed at construction), so for them -- as for terminals --
    only the shared (state, parent, n_terms) triple needs recording.
    """
    records: list[_Record] = []
    seen: set[int] = set()
    stack: list[Node] = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, (ProductionNode, ErrorNode)):
            structure = node._kids
        elif isinstance(node, SymbolNode):
            structure = tuple(node._alternatives)
        elif isinstance(node, SequenceNode):
            structure = node._root
        else:
            structure = None
        records.append((node, node.state, node.parent, node.n_terms, structure))
        stack.extend(node.kids)
    return records
