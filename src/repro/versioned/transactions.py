"""Transactional parses: rollback to the last good document version.

Incremental reparsing mutates the previous version's tree *in place*:
subtree shifts overwrite recorded parse states, the node-retention pool
hands old production nodes to new reductions, local ambiguity packing
appends alternatives to existing choice nodes, commit re-adopts parent
pointers along fresh structure, and balanced-sequence repair splices
directly into the committed spine.  An exception anywhere in that
pipeline would otherwise leave the document half-mutated -- parsed-tree
bookkeeping out of sync with the text, parent chains pointing into
discarded structure.

Two rollback strategies implement the same guarantee:

* **Journal** (:class:`JournalTransaction`, the default) -- a
  first-touch :class:`~repro.dag.journal.MutationJournal` records each
  node's old field values the first time a mutation site writes it;
  rollback replays the journal in reverse.  Begin cost is O(tokens)
  (shallow copies of the document's scalar bookkeeping, at C speed);
  per-parse node cost is O(touched region).  This is the strategy that
  keeps the *incremental* cost of a parse incremental.
* **Snapshot** (:class:`SnapshotTransaction`) -- capture every mutable
  field of every reachable node before the attempt, write it all back
  on failure.  O(tree) on every parse, trivially correct; retained as
  the differential-testing oracle and selectable via ``REPRO_TXN``.

Select with ``Document(transaction=...)`` or the ``REPRO_TXN``
environment variable (``journal`` | ``snapshot`` | ``none``).  Both
strategies are value-faithful: node *identities* survive rollback, so
annotations, the token registry, and any outstanding edit log keep
working after a restore exactly as before the failed attempt.  The
fault-injection suite asserts the two restore bit-identical state.
"""

from __future__ import annotations

import os

from .. import obs
from ..dag.journal import MutationJournal, activate, deactivate
from ..dag.nodes import Node

# Record layout: (node, state, parent, n_terms, structure) where
# ``structure`` is the node-kind-specific mutable link bundle
# (``Node._capture_structure``) -- shared with the mutation journal.
_Record = tuple

# Environment knob for the default transaction strategy.
TXN_ENV = "REPRO_TXN"
TXN_MODES = ("journal", "snapshot", "none")


def resolve_transaction_mode(explicit: str | None = None) -> str:
    """The transaction strategy to use: explicit arg > ``REPRO_TXN`` > journal."""
    if explicit is not None:
        if explicit not in TXN_MODES:
            raise ValueError(
                f"unknown transaction mode {explicit!r}; "
                f"expected one of {', '.join(TXN_MODES)}"
            )
        return explicit
    env = os.environ.get(TXN_ENV, "").strip().lower()
    if env in TXN_MODES:
        return env
    return "journal"


class _DocumentState:
    """The document's own (non-node) mutable state, captured shallowly.

    Token lists and registries are copied at C speed; tree nodes are
    *not* walked here -- node-level capture is the strategies' job.
    """

    __slots__ = (
        "text",
        "version",
        "tokens",
        "token_nodes",
        "removed_nodes",
        "edit_log",
        "fresh_nodes",
        "last_result",
        "tree",
    )

    def __init__(self, document) -> None:
        doc = document
        self.text: str = doc.text
        self.version: int = doc.version
        self.tokens = list(doc.tokens)
        self.token_nodes = dict(doc._token_nodes)
        self.removed_nodes = list(doc._removed_nodes)
        self.edit_log = list(doc._edit_log)
        self.fresh_nodes = dict(doc._fresh_nodes)
        self.last_result = doc.last_result
        self.tree = doc.tree

    def restore(self, document) -> None:
        doc = document
        doc.text = self.text
        doc.version = self.version
        doc.tokens = list(self.tokens)
        doc._token_nodes = dict(self.token_nodes)
        doc._removed_nodes = list(self.removed_nodes)
        doc._edit_log = list(self.edit_log)
        doc._fresh_nodes = dict(self.fresh_nodes)
        doc.last_result = self.last_result
        doc.tree = self.tree


class DocumentSnapshot:
    """A restorable snapshot of a Document's complete analysis state."""

    __slots__ = ("state", "records")

    def __init__(self, document) -> None:
        self.state = _DocumentState(document)
        self.records: list[_Record] = (
            _capture(document.tree) if document.tree is not None else []
        )

    def restore(self, document) -> None:
        """Write the snapshot back; the document forgets the failed attempt."""
        self.state.restore(document)
        for node, state, parent, n_terms, structure in self.records:
            node.state = state
            node.parent = parent
            node.n_terms = n_terms
            node._restore_structure(structure)


def _capture(root: Node) -> list[_Record]:
    """Mutable state of every node reachable from ``root``, once each.

    Sequence parts are persistent (their kid tuples, item counts, and
    depths are fixed at construction), so for them -- as for terminals --
    only the shared (state, parent, n_terms) triple needs recording.
    """
    records: list[_Record] = []
    seen: set[int] = set()
    stack: list[Node] = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        records.append(
            (
                node,
                node.state,
                node.parent,
                node.n_terms,
                node._capture_structure(),
            )
        )
        stack.extend(node.kids)
    return records


# -- transactions --------------------------------------------------------------


class Transaction:
    """One parse attempt's rollback scope.

    ``rollback`` restores the document to the state at construction and
    may be called repeatedly (the recovery ladder rolls back, mutates
    further, and rolls back again).  ``close`` releases the scope and
    must run exactly once, on every exit path -- callers use
    ``try/finally``.  ``real`` is False only for the null strategy, so
    the ladder can keep its non-transactional fallback behaviour.
    """

    real = True

    def rollback(self, document) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release the transaction scope (idempotent)."""


class SnapshotTransaction(Transaction):
    """O(tree) value snapshot up front; restore is a bulk write-back."""

    __slots__ = ("_snapshot",)

    def __init__(self, document) -> None:
        self._snapshot = DocumentSnapshot(document)
        n = len(self._snapshot.records)
        obs.incr("txn.snapshot_records", n)
        # Space model matches repro.obs.space: five words per captured
        # record (node ref, state, parent, n_terms, structure).
        obs.incr("txn.snapshot_bytes", n * 5 * 8)

    @property
    def node_records(self) -> int:
        return len(self._snapshot.records)

    def rollback(self, document) -> None:
        self._snapshot.restore(document)


class JournalTransaction(Transaction):
    """First-touch journal: capture on write, replay in reverse on failure."""

    __slots__ = ("_state", "_journal", "_open")

    def __init__(self, document) -> None:
        self._state = _DocumentState(document)
        self._journal = MutationJournal()
        self._open = True
        activate(self._journal)

    @property
    def node_records(self) -> int:
        return len(self._journal)

    def rollback(self, document) -> None:
        # Replay first: node restores must see the failed attempt's
        # writes undone before the scalar state points back at the old
        # tree.  The journal stays active (reset) so a later rollback of
        # the same transaction covers mutations made after this one.
        self._journal.replay()
        self._state.restore(document)

    def close(self) -> None:
        if self._open:
            self._open = False
            deactivate(self._journal)


class NullTransaction(Transaction):
    """Opt-out: no capture, no rollback (``transaction="none"``)."""

    real = False

    def rollback(self, document) -> None:  # pragma: no cover - never called
        raise RuntimeError("null transaction cannot roll back")


def begin_transaction(document, mode: str) -> Transaction:
    """Open a transaction of the given strategy over ``document``."""
    if mode == "journal":
        return JournalTransaction(document)
    if mode == "snapshot":
        return SnapshotTransaction(document)
    if mode == "none":
        return NullTransaction()
    raise ValueError(f"unknown transaction mode {mode!r}")
