"""Self-versioning documents: the incremental analysis driver.

A :class:`Document` owns the program text, its token stream, and its
abstract parse DAG, and keeps all three consistent across edits:

* :meth:`edit` applies a textual change, incrementally relexing the
  affected region (paper's incremental lexer with lookahead tracking);
* :meth:`parse` incrementally reparses, reusing unchanged subtrees from
  the previous version, and commits the new tree;
* on a syntax error, a recovery ladder (paper section 4.3) keeps the
  document analyzable: history-sensitive non-correcting recovery reverts
  the most recent offending modifications when a clean prior version
  exists, and panic-mode error isolation confines the damage to
  :class:`~repro.dag.nodes.ErrorNode` regions when it does not.

Every parse is transactional by default: a first-touch mutation journal
(see `repro.versioned.transactions`) records old values as the pipeline
writes them and is replayed in reverse if *anything* goes wrong, so no
exception -- syntax error, invariant violation, injected fault -- can
leave a document between versions.  ``REPRO_TXN=snapshot`` selects the
O(tree) value-snapshot strategy instead (the differential oracle).

The previous tree is the paper's ``lastParsedVersion``; between parses,
modifications accumulate in token-level bookkeeping and are turned into a
:class:`~repro.parser.plan.ParsePlan` overlay when parsing starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..dag.journal import touch
from ..dag.nodes import ErrorNode, Node, ProductionNode, TerminalNode
from ..dag.traversal import choice_points, error_regions, unparse
from ..dag.validate import check_document, validation_enabled
from ..language import Language
from ..lexing.incremental import relex
from ..lexing.tokens import BOS, Token
from ..parser.iglr import IGLRParser, ParseError, ParseResult, ParseStats
from ..parser.incremental_lr import IncrementalLRParser
from ..parser.input_stream import InputStream
from ..parser.plan import ParsePlan
from ..testing.faults import crash_point, register_points
from .transactions import (
    Transaction,
    begin_transaction,
    resolve_transaction_mode,
)

register_points(**{
    "commit:start": "commit pipeline entered, nothing written yet",
    "commit:adopted": "new nodes have adopted their kids",
    "commit:collapsed": "sequence spines collapsed to balanced form",
    "commit:rooted": "new root installed, parents re-adopted",
    "commit:registry": "token-node registry rebuilt",
    "recover:after-revert": "one edit reverted during history-sensitive recovery",
    "recover:before-commit": "reverted prefix parses, about to re-incorporate",
    "isolate:reparse": "panic-mode tolerant reparse about to run",
    "persist:doc-capture": "document snapshot payload being assembled",
    "persist:doc-restore": "document state being rebuilt from a payload",
})


@dataclass(frozen=True)
class Edit:
    """One textual modification, invertible for error recovery."""

    offset: int
    removed_text: str
    inserted_text: str

    def inverse(self) -> "Edit":
        return Edit(self.offset, self.inserted_text, self.removed_text)


@dataclass
class AnalysisReport:
    """Outcome of :meth:`Document.parse`.

    ``error_regions`` counts the isolated error regions in the committed
    tree (zero for a clean parse); ``recovered`` is True when the tree
    was produced by panic-mode isolation rather than a normal parse.
    """

    stats: ParseStats
    ambiguous_regions: int
    reverted_edits: list[Edit] = field(default_factory=list)
    error_regions: int = 0
    recovered: bool = False

    @property
    def fully_incorporated(self) -> bool:
        return not self.reverted_edits


class DocumentError(Exception):
    """Raised when a document cannot reach any valid parse."""


class Document:
    """An editable program with an incrementally maintained parse DAG."""

    def __init__(
        self,
        language: Language,
        text: str = "",
        engine: str = "iglr",
        balanced_sequences: bool = False,
        transactional: bool = True,
        transaction: str | None = None,
    ) -> None:
        self.language = language
        self.text = text
        self.engine_name = engine
        # Balanced representation for grammar-declared sequences (paper
        # 3.4): spines collapse to log-depth SequenceNodes at commit, and
        # sequence-local edits are repaired by fragment reparse + splice
        # without running the main parser.
        self.balanced_sequences = balanced_sequences
        # Transactional parses roll back on any failure.  The strategy
        # (``journal`` first-touch undo log, ``snapshot`` O(tree) value
        # capture, or ``none``) comes from the ``transaction`` argument,
        # the REPRO_TXN environment variable, or the journal default;
        # ``transactional=False`` is the legacy spelling of ``none``.
        self.transaction_mode = (
            "none" if not transactional else resolve_transaction_mode(transaction)
        )
        self.transactional = self.transaction_mode != "none"
        if engine == "iglr":
            self._parser = IGLRParser(language.table)
        elif engine == "lr":
            self._parser = IncrementalLRParser(language.table)
        elif engine == "lr-sentential":
            self._parser = IncrementalLRParser(
                language.table, mode="sentential-form"
            )
        else:
            raise ValueError(f"unknown engine {engine!r}")
        self.tree: ProductionNode | None = None
        self.version = 0
        self.tokens: list[Token] = []
        self.last_result: ParseResult | None = None
        # Token object -> its terminal node in the current tree.
        self._token_nodes: dict[int, tuple[Token, TerminalNode]] = {}
        # Terminal nodes whose tokens left the stream since last parse.
        self._removed_nodes: list[TerminalNode] = []
        # Same, for the *last committed* parse: alongside
        # last_result.new_nodes this is the mutation journal consumers
        # (e.g. repro.semantics) read to scope invalidation to the edit.
        self.last_removed_terminals: list[TerminalNode] = []
        self._edit_log: list[Edit] = []
        self._fresh_nodes: dict[int, TerminalNode] = {}
        self._bos_node = TerminalNode(Token(BOS, ""))
        # Error regions in the committed tree (0 = clean version).
        self._error_count = 0
        # tree_node_count() memo: (version it was computed at, count).
        self._node_count: tuple[int, int] = (-1, 0)

    # -- editing ------------------------------------------------------------

    def edit(self, offset: int, removed_len: int, inserted: str) -> None:
        """Replace ``removed_len`` characters at ``offset`` by ``inserted``.

        The token stream is incrementally relexed immediately; the parse
        DAG is updated on the next :meth:`parse`.
        """
        if offset < 0 or offset + removed_len > len(self.text):
            raise ValueError("edit range outside document")
        obs.incr("doc.edits")
        removed_text = self.text[offset : offset + removed_len]
        self._edit_log.append(Edit(offset, removed_text, inserted))
        self._apply_edit(offset, removed_len, inserted)

    def _apply_edit(self, offset: int, removed_len: int, inserted: str) -> None:
        self.text = (
            self.text[:offset]
            + inserted
            + self.text[offset + removed_len :]
        )
        if self.tree is None:
            return  # first parse will lex from scratch
        result = relex(
            self.language.lexer,
            self.tokens,
            self.text,
            offset,
            removed_len,
            len(inserted),
        )
        self.tokens = result.tokens
        for token in result.removed:
            entry = self._token_nodes.pop(id(token), None)
            if entry is not None:
                self._removed_nodes.append(entry[1])
            # Tokens without nodes were fresh since the last parse; they
            # simply vanish.

    def insert(self, offset: int, text: str) -> None:
        """Convenience: insert text."""
        self.edit(offset, 0, text)

    def delete(self, offset: int, length: int) -> None:
        """Convenience: delete text."""
        self.edit(offset, length, "")

    # -- parsing ----------------------------------------------------------------

    def parse(self, recover: bool = True) -> AnalysisReport:
        """(Re)parse the document, committing the new version.

        With ``recover=True`` (default), a syntax error runs the recovery
        ladder: history-sensitive reversion of the most recent edits when
        a clean previous version exists, panic-mode error isolation
        otherwise (fresh documents, or documents whose committed tree
        already contains error regions), with isolation as the last
        resort when reversion cannot converge.  Reverted edits are
        reported as unincorporated; isolated errors are reported via
        ``error_regions``/``recovered``.  With ``recover=False`` the
        :class:`~repro.parser.iglr.ParseError` propagates and the
        document keeps its previous version.

        In transactional mode (the default) *any* exception escaping this
        method -- including ``recover=False`` syntax errors and faults
        injected into the commit pipeline -- leaves the document exactly
        as it was on entry.
        """
        with obs.span("doc.parse", version=self.version):
            obs.incr("doc.parses")
            return self._parse_transactional(recover)

    def _parse_transactional(self, recover: bool) -> AnalysisReport:
        txn = begin_transaction(self, self.transaction_mode)
        try:
            try:
                report = self._parse_attempt()
            except ParseError:
                if txn.real:
                    txn.rollback(self)
                if not recover:
                    raise
                try:
                    report = self._recover_ladder(txn)
                except BaseException:
                    if txn.real:
                        txn.rollback(self)
                    raise
                if report is None:
                    if txn.real:
                        txn.rollback(self)
                    raise
            except BaseException:
                if txn.real:
                    txn.rollback(self)
                raise
        finally:
            txn.close()
        if validation_enabled():
            check_document(self)
        return report

    def _parse_attempt(self) -> AnalysisReport:
        """One straight-line parse + commit, no recovery."""
        if self.balanced_sequences and self.tree is not None:
            repaired = self._attempt_sequence_repair()
            if repaired is not None:
                return repaired
        result = self._attempt_parse()
        self._commit(result)
        return AnalysisReport(
            stats=result.stats,
            ambiguous_regions=len(choice_points(self.tree)),
            error_regions=self._error_count,
        )

    def _attempt_parse(self) -> ParseResult:
        if self.tree is None:
            self.tokens = self.language.lexer.lex(self.text)
            terminals = [TerminalNode(tok) for tok in self.tokens]
            self._fresh_nodes = {
                id(tok): node for tok, node in zip(self.tokens, terminals)
            }
            stream = InputStream(list(terminals))
            return self._parser.parse(stream)
        plan, fresh_nodes = self._build_plan()
        self._fresh_nodes = fresh_nodes
        initial: list[Node] = [self.tree.kids[1], self.tree.kids[2]]
        stream = InputStream(initial, plan)
        return self._parser.parse(stream)

    def _build_plan(self) -> tuple[ParsePlan, dict[int, TerminalNode]]:
        """Convert accumulated token changes into a modification overlay."""
        plan = ParsePlan()
        for node in self._removed_nodes:
            plan.mark_deleted(node)
        fresh_nodes: dict[int, TerminalNode] = {}
        run: list[TerminalNode] = []
        for token in self.tokens:
            if id(token) in self._token_nodes:
                if run:
                    plan.add_pending_before(self._token_nodes[id(token)][1], run)
                    run = []
            else:
                node = TerminalNode(token)
                fresh_nodes[id(token)] = node
                run.append(node)
        if run:
            plan.add_pending_at_end(run)
        return plan, fresh_nodes

    def _attempt_sequence_repair(self) -> AnalysisReport | None:
        """The paper-3.4 fast path: splice reparsed elements in place."""
        from ..parser.sequences import attempt_sequence_repair

        outcome = attempt_sequence_repair(self)
        if outcome is None:
            return None
        self.last_removed_terminals = self._removed_nodes
        self._removed_nodes = []
        self._edit_log = []
        self.version += 1
        self.last_result = ParseResult(
            self.tree.kids[1], outcome.stats, outcome.new_nodes
        )
        return AnalysisReport(
            stats=outcome.stats,
            ambiguous_regions=len(choice_points(self.tree)),
            error_regions=self._error_count,
        )

    def _commit(self, result: ParseResult) -> None:
        with obs.span("doc.commit"):
            obs.incr("doc.commits")
            self._commit_inner(result)

    def _commit_inner(self, result: ParseResult) -> None:
        crash_point("commit:start")
        for node in result.new_nodes:
            if isinstance(node, (ProductionNode, ErrorNode)):
                node.adopt_kids()
        crash_point("commit:adopted")
        if self.balanced_sequences:
            from ..dag.sequences import SequenceNode
            from ..parser.sequences import collapse_sequences

            replacements = collapse_sequences(
                result.new_nodes, self.language.grammar
            )
            replaced_root = replacements.get(id(result.root))
            if replaced_root is not None:
                result.root = replaced_root
            result.new_nodes.extend(replacements.values())
            # Sequence nodes synthesized during breakdown defer their
            # internal adoption until they are known to be in the
            # committed tree; fix the spines of any sequence reachable
            # as a child of new structure.
            for node in result.new_nodes:
                if isinstance(node, (ProductionNode, ErrorNode)):
                    for kid in node.kids:
                        if isinstance(kid, SequenceNode):
                            kid._adopt_spine()
            if isinstance(result.root, SequenceNode):
                result.root._adopt_spine()
        crash_point("commit:collapsed")
        eos_entry = self._token_nodes.get(id(self.tokens[-1]))
        if eos_entry is not None:
            eos_node = eos_entry[1]
        else:
            eos_node = self._fresh_nodes[id(self.tokens[-1])]
        root = ProductionNode(
            self.language.root_production,
            (self._bos_node, result.root, eos_node),
        )
        root.adopt_kids()
        self.tree = root
        # Re-adopt along the committed structure: dead GSS branches and
        # discarded alternatives also ran adopt_kids above, and whichever
        # adopter came last owns a shared kid's parent pointer.  Upward
        # navigation (change propagation, sequence repair) needs parents
        # that are *in* the tree, so give in-tree parents the last word.
        # O(new nodes): old subtrees are internally consistent already.
        new_ids = {id(n) for n in result.new_nodes}
        seen: set[int] = set()
        stack: list[Node] = [root]
        while stack:
            node = stack.pop()
            for kid in node.kids:
                touch(kid)
                kid.parent = node
                if id(kid) in new_ids and id(kid) not in seen:
                    seen.add(id(kid))
                    stack.append(kid)
        crash_point("commit:rooted")
        # Registry maintenance: drop stale entries, add fresh terminals.
        registry: dict[int, tuple[Token, TerminalNode]] = {}
        for token in self.tokens:
            entry = self._token_nodes.get(id(token))
            node = entry[1] if entry else self._fresh_nodes[id(token)]
            registry[id(token)] = (token, node)
        self._token_nodes = registry
        crash_point("commit:registry")
        self.last_removed_terminals = self._removed_nodes
        self._removed_nodes = []
        self._edit_log = []
        self._fresh_nodes = {}
        if self._error_count or any(n.is_error_node for n in result.new_nodes):
            self._error_count = len(error_regions(self.tree))
        else:
            self._error_count = 0
        self.version += 1
        self.last_result = result

    # -- error recovery -----------------------------------------------------------

    def _recover_ladder(self, txn: Transaction):
        """Run the recovery ladder after a failed parse attempt.

        The document has already been rolled back to its pre-parse state
        (transactional mode) when this runs; ``txn`` is the enclosing
        parse transaction, still open, used to re-reach that state when
        reversion exhausts the history.  Returns the report of the step
        that succeeded, or None when no step applies -- the caller then
        re-raises the original :class:`ParseError`.

        Ladder, in order (paper 4.3 plus isolation):

        1. *Isolation first* when there is no clean committed version to
           fall back on: fresh documents, and documents whose tree
           already contains error regions (reverting edits cannot reach
           a parseable text).
        2. *History-sensitive reversion*: undo the most recent edits one
           at a time until some prefix of the modification history
           parses; reverted edits are reported as unincorporated.
        3. *Isolation as last resort* when reversion exhausts the edit
           log without converging: re-apply the full edit history
           (transactional mode) and commit an error-isolated tree
           instead of losing the user's modifications.
        """
        if self.tree is None or self._error_count:
            report = self._parse_isolated()
            if report is not None:
                return report
            if self.tree is None:
                return None  # fresh document, nothing else to try
        if not self._edit_log:
            return None
        reverted: list[Edit] = []
        while self._edit_log:
            edit = self._edit_log.pop()
            inverse = edit.inverse()
            self._apply_edit(
                inverse.offset, len(inverse.removed_text), inverse.inserted_text
            )
            reverted.append(edit)
            crash_point("recover:after-revert")
            attempt = begin_transaction(self, self.transaction_mode)
            try:
                try:
                    self._attempt_parse()
                except ParseError:
                    # A failed trial must not leak scratch state (fresh
                    # terminal nodes, clobbered parse states) into the
                    # next one: roll back to the post-revert state, or
                    # at minimum drop the scratch nodes when
                    # non-transactional.
                    if attempt.real:
                        attempt.rollback(self)
                    else:
                        self._fresh_nodes = {}
                    continue
                # The reverted prefix parses.  Discard the trial's
                # scratch and in-place mutations, then incorporate it
                # through the full pipeline -- which gets another shot
                # at the sequence-repair fast path for the surviving
                # edits.
                if attempt.real:
                    attempt.rollback(self)
                else:
                    self._fresh_nodes = {}
            finally:
                attempt.close()
            crash_point("recover:before-commit")
            report = self._parse_attempt()
            report.reverted_edits = reverted
            return report
        # Reversion exhausted the history without converging.  Re-apply
        # the edits (by rolling back to the pre-parse state) and isolate
        # the errors instead.
        if txn.real:
            txn.rollback(self)
            reverted = []
        report = self._parse_isolated()
        if report is not None:
            report.reverted_edits = reverted
            return report
        return None

    def _parse_isolated(self) -> AnalysisReport | None:
        """Batch reparse with panic-mode error isolation (paper 4.3).

        Commits a tree in which unparseable regions are confined to
        :class:`~repro.dag.nodes.ErrorNode` subtrees.  Returns None (with
        the document restored) if even the tolerant parse fails.
        """
        txn = begin_transaction(self, self.transaction_mode)
        try:
            try:
                if self.tree is None:
                    self.tokens = self.language.lexer.lex(self.text)
                terminals = [TerminalNode(tok) for tok in self.tokens]
                self._fresh_nodes = {
                    id(tok): node for tok, node in zip(self.tokens, terminals)
                }
                # Batch re-derivation: the previous tree (if any) is
                # abandoned wholesale, so the registry starts empty.
                self._token_nodes = {}
                self._removed_nodes = []
                crash_point("isolate:reparse")
                result = self._parser.parse_tolerant(terminals)
            except ParseError:
                if txn.real:
                    txn.rollback(self)
                return None
            self._commit(result)
        finally:
            txn.close()
        return AnalysisReport(
            stats=result.stats,
            ambiguous_regions=len(choice_points(self.tree)),
            error_regions=self._error_count,
            recovered=True,
        )

    # -- queries --------------------------------------------------------------------

    @property
    def body(self) -> Node | None:
        """The start-symbol node of the current tree (None before parse)."""
        return self.tree.kids[1] if self.tree is not None else None

    @property
    def is_ambiguous(self) -> bool:
        return self.tree is not None and bool(choice_points(self.tree))

    @property
    def has_errors(self) -> bool:
        """True when the committed tree contains isolated error regions."""
        return self._error_count > 0

    @property
    def dirty(self) -> bool:
        """Edits accepted (or text never parsed) since the last commit.

        A dirty document's ``text`` runs ahead of its committed tree, so
        tree-derived answers (``has_errors``, ``body``...) describe an
        older version of the buffer.
        """
        return bool(self._edit_log) or self.tree is None

    def tree_node_count(self) -> int:
        """Unique nodes in the committed DAG (shared nodes counted once).

        Memoized per version: the resident-size accounting of the
        analysis service asks after every committed batch, and a version
        that has not changed cannot have changed size.
        """
        if self.tree is None:
            return 0
        version, count = self._node_count
        if version != self.version:
            from ..obs.space import measure_space

            count = measure_space(self.tree).nodes
            self._node_count = (self.version, count)
        return count

    # -- persistence ----------------------------------------------------------

    def snapshot_state(self) -> dict | None:
        """Picklable payload of the committed state, or None.

        The payload carries no :class:`~repro.language.Language`
        reference (languages are rebuilt from their name or DSL source
        on restore, warm-started by the parse-table cache) and only
        describes a *committed* version: a dirty document -- text ahead
        of the tree -- returns None and the caller falls back to a
        text-only snapshot.  Tokens, terminal nodes, and the tree share
        object identity inside one payload, so a single pickle of the
        returned dict preserves the identity structure the incremental
        parser depends on.
        """
        if self.tree is None or self.dirty:
            return None
        crash_point("persist:doc-capture")
        nodes = []
        for token in self.tokens:
            entry = self._token_nodes.get(id(token))
            if entry is None:
                return None  # registry out of step: refuse, don't guess
            nodes.append(entry[1])
        return {
            "text": self.text,
            "version": self.version,
            "engine": self.engine_name,
            "balanced": self.balanced_sequences,
            "error_count": self._error_count,
            "tree": self.tree,
            "tokens": self.tokens,
            "nodes": nodes,
        }

    @classmethod
    def restore_state(cls, language: Language, payload: dict) -> "Document":
        """Rebuild a committed document from :meth:`snapshot_state`.

        The restored document is immediately parseable: the next
        :meth:`edit` + :meth:`parse` runs the ordinary incremental
        pipeline against the unpickled tree, so recovery cost after a
        process restart is one incremental pass over whatever changed,
        not a batch reparse.
        """
        crash_point("persist:doc-restore")
        doc = cls(
            language,
            payload["text"],
            engine=payload["engine"],
            balanced_sequences=payload["balanced"],
        )
        tree = payload["tree"]
        if not isinstance(tree, ProductionNode) or len(tree.kids) != 3:
            raise ValueError("snapshot payload has no well-formed root")
        doc.tree = tree
        doc.tokens = payload["tokens"]
        doc._token_nodes = {
            id(token): (token, node)
            for token, node in zip(doc.tokens, payload["nodes"])
        }
        # Future commits wrap the body with the restored bos terminal,
        # keeping the root's first kid stable across the restart.
        doc._bos_node = tree.kids[0]
        doc._error_count = payload["error_count"]
        doc.version = payload["version"]
        return doc

    def source_text(self) -> str:
        """Reconstruct text from the tree (must equal ``self.text``)."""
        if self.tree is None:
            return self.text
        return unparse(self.tree)

    def terminal_for_offset(self, offset: int) -> TerminalNode | None:
        """The terminal node whose span contains ``offset``."""
        pos = 0
        for token in self.tokens:
            if pos <= offset < pos + token.width:
                entry = self._token_nodes.get(id(token))
                return entry[1] if entry else None
            pos += token.width
        return None
