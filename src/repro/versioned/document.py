"""Self-versioning documents: the incremental analysis driver.

A :class:`Document` owns the program text, its token stream, and its
abstract parse DAG, and keeps all three consistent across edits:

* :meth:`edit` applies a textual change, incrementally relexing the
  affected region (paper's incremental lexer with lookahead tracking);
* :meth:`parse` incrementally reparses, reusing unchanged subtrees from
  the previous version, and commits the new tree;
* on a syntax error, history-sensitive non-correcting recovery (paper
  section 4.3, simplified from reference [27]) reverts the most recent
  offending modifications so that the document always converges to a
  version with at least one valid parse; reverted edits are reported as
  *unincorporated*.

The previous tree is the paper's ``lastParsedVersion``; between parses,
modifications accumulate in token-level bookkeeping and are turned into a
:class:`~repro.parser.plan.ParsePlan` overlay when parsing starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dag.nodes import Node, ProductionNode, TerminalNode
from ..dag.traversal import choice_points, unparse
from ..language import Language
from ..lexing.incremental import relex
from ..lexing.tokens import BOS, Token
from ..parser.iglr import IGLRParser, ParseError, ParseResult, ParseStats
from ..parser.incremental_lr import IncrementalLRParser
from ..parser.input_stream import InputStream
from ..parser.plan import ParsePlan


@dataclass(frozen=True)
class Edit:
    """One textual modification, invertible for error recovery."""

    offset: int
    removed_text: str
    inserted_text: str

    def inverse(self) -> "Edit":
        return Edit(self.offset, self.inserted_text, self.removed_text)


@dataclass
class AnalysisReport:
    """Outcome of :meth:`Document.parse`."""

    stats: ParseStats
    ambiguous_regions: int
    reverted_edits: list[Edit] = field(default_factory=list)

    @property
    def fully_incorporated(self) -> bool:
        return not self.reverted_edits


class DocumentError(Exception):
    """Raised when a document cannot reach any valid parse."""


class Document:
    """An editable program with an incrementally maintained parse DAG."""

    def __init__(
        self,
        language: Language,
        text: str = "",
        engine: str = "iglr",
        balanced_sequences: bool = False,
    ) -> None:
        self.language = language
        self.text = text
        self.engine_name = engine
        # Balanced representation for grammar-declared sequences (paper
        # 3.4): spines collapse to log-depth SequenceNodes at commit, and
        # sequence-local edits are repaired by fragment reparse + splice
        # without running the main parser.
        self.balanced_sequences = balanced_sequences
        if engine == "iglr":
            self._parser = IGLRParser(language.table)
        elif engine == "lr":
            self._parser = IncrementalLRParser(language.table)
        elif engine == "lr-sentential":
            self._parser = IncrementalLRParser(
                language.table, mode="sentential-form"
            )
        else:
            raise ValueError(f"unknown engine {engine!r}")
        self.tree: ProductionNode | None = None
        self.version = 0
        self.tokens: list[Token] = []
        self.last_result: ParseResult | None = None
        # Token object -> its terminal node in the current tree.
        self._token_nodes: dict[int, tuple[Token, TerminalNode]] = {}
        # Terminal nodes whose tokens left the stream since last parse.
        self._removed_nodes: list[TerminalNode] = []
        self._edit_log: list[Edit] = []
        self._fresh_nodes: dict[int, TerminalNode] = {}
        self._bos_node = TerminalNode(Token(BOS, ""))

    # -- editing ------------------------------------------------------------

    def edit(self, offset: int, removed_len: int, inserted: str) -> None:
        """Replace ``removed_len`` characters at ``offset`` by ``inserted``.

        The token stream is incrementally relexed immediately; the parse
        DAG is updated on the next :meth:`parse`.
        """
        if offset < 0 or offset + removed_len > len(self.text):
            raise ValueError("edit range outside document")
        removed_text = self.text[offset : offset + removed_len]
        self._edit_log.append(Edit(offset, removed_text, inserted))
        self._apply_edit(offset, removed_len, inserted)

    def _apply_edit(self, offset: int, removed_len: int, inserted: str) -> None:
        self.text = (
            self.text[:offset]
            + inserted
            + self.text[offset + removed_len :]
        )
        if self.tree is None:
            return  # first parse will lex from scratch
        result = relex(
            self.language.lexer,
            self.tokens,
            self.text,
            offset,
            removed_len,
            len(inserted),
        )
        self.tokens = result.tokens
        for token in result.removed:
            entry = self._token_nodes.pop(id(token), None)
            if entry is not None:
                self._removed_nodes.append(entry[1])
            # Tokens without nodes were fresh since the last parse; they
            # simply vanish.

    def insert(self, offset: int, text: str) -> None:
        """Convenience: insert text."""
        self.edit(offset, 0, text)

    def delete(self, offset: int, length: int) -> None:
        """Convenience: delete text."""
        self.edit(offset, length, "")

    # -- parsing ----------------------------------------------------------------

    def parse(self, recover: bool = True) -> AnalysisReport:
        """(Re)parse the document, committing the new version.

        With ``recover=True`` (default), a syntax error triggers
        history-sensitive recovery: the most recent edits are reverted
        one at a time until some prefix of the modification history
        parses; the reverted edits are reported as unincorporated.  With
        ``recover=False`` the :class:`~repro.parser.iglr.ParseError`
        propagates and the document keeps its previous version.
        """
        if self.balanced_sequences and self.tree is not None:
            repaired = self._attempt_sequence_repair()
            if repaired is not None:
                return repaired
        try:
            result = self._attempt_parse()
        except ParseError as error:
            if not recover or self.tree is None or not self._edit_log:
                raise
            reverted = self._recover()
            report = self.parse(recover=False)
            report.reverted_edits.extend(reverted)
            return report
        self._commit(result)
        return AnalysisReport(
            stats=result.stats,
            ambiguous_regions=len(choice_points(self.tree)),
        )

    def _attempt_parse(self) -> ParseResult:
        if self.tree is None:
            self.tokens = self.language.lexer.lex(self.text)
            terminals = [TerminalNode(tok) for tok in self.tokens]
            self._fresh_nodes = {
                id(tok): node for tok, node in zip(self.tokens, terminals)
            }
            stream = InputStream(list(terminals))
            return self._parser.parse(stream)
        plan, fresh_nodes = self._build_plan()
        self._fresh_nodes = fresh_nodes
        initial: list[Node] = [self.tree.kids[1], self.tree.kids[2]]
        stream = InputStream(initial, plan)
        return self._parser.parse(stream)

    def _build_plan(self) -> tuple[ParsePlan, dict[int, TerminalNode]]:
        """Convert accumulated token changes into a modification overlay."""
        plan = ParsePlan()
        for node in self._removed_nodes:
            plan.mark_deleted(node)
        fresh_nodes: dict[int, TerminalNode] = {}
        run: list[TerminalNode] = []
        for token in self.tokens:
            if id(token) in self._token_nodes:
                if run:
                    plan.add_pending_before(self._token_nodes[id(token)][1], run)
                    run = []
            else:
                node = TerminalNode(token)
                fresh_nodes[id(token)] = node
                run.append(node)
        if run:
            plan.add_pending_at_end(run)
        return plan, fresh_nodes

    def _attempt_sequence_repair(self) -> AnalysisReport | None:
        """The paper-3.4 fast path: splice reparsed elements in place."""
        from ..parser.sequences import attempt_sequence_repair

        outcome = attempt_sequence_repair(self)
        if outcome is None:
            return None
        self._removed_nodes = []
        self._edit_log = []
        self.version += 1
        self.last_result = ParseResult(
            self.tree.kids[1], outcome.stats, outcome.new_nodes
        )
        return AnalysisReport(
            stats=outcome.stats,
            ambiguous_regions=len(choice_points(self.tree)),
        )

    def _commit(self, result: ParseResult) -> None:
        for node in result.new_nodes:
            if isinstance(node, ProductionNode):
                node.adopt_kids()
        if self.balanced_sequences:
            from ..dag.sequences import SequenceNode
            from ..parser.sequences import collapse_sequences

            replacements = collapse_sequences(
                result.new_nodes, self.language.grammar
            )
            replaced_root = replacements.get(id(result.root))
            if replaced_root is not None:
                result.root = replaced_root
            result.new_nodes.extend(replacements.values())
            # Sequence nodes synthesized during breakdown defer their
            # internal adoption until they are known to be in the
            # committed tree; fix the spines of any sequence reachable
            # as a child of new structure.
            for node in result.new_nodes:
                if isinstance(node, ProductionNode):
                    for kid in node.kids:
                        if isinstance(kid, SequenceNode):
                            kid._adopt_spine()
            if isinstance(result.root, SequenceNode):
                result.root._adopt_spine()
        eos_entry = self._token_nodes.get(id(self.tokens[-1]))
        if eos_entry is not None:
            eos_node = eos_entry[1]
        else:
            eos_node = self._fresh_nodes[id(self.tokens[-1])]
        root = ProductionNode(
            self.language.root_production,
            (self._bos_node, result.root, eos_node),
        )
        root.adopt_kids()
        self.tree = root
        # Registry maintenance: drop stale entries, add fresh terminals.
        registry: dict[int, tuple[Token, TerminalNode]] = {}
        for token in self.tokens:
            entry = self._token_nodes.get(id(token))
            node = entry[1] if entry else self._fresh_nodes[id(token)]
            registry[id(token)] = (token, node)
        self._token_nodes = registry
        self._removed_nodes = []
        self._edit_log = []
        self._fresh_nodes = {}
        self.version += 1
        self.last_result = result

    # -- error recovery -----------------------------------------------------------

    def _recover(self) -> list[Edit]:
        """Revert recent edits until the document parses (paper 4.3).

        Works backwards through the modification history; each reverted
        edit is undone textually (which re-runs the incremental lexer) so
        the remaining prefix of the history is analyzed on the next
        attempt.  Returns the reverted edits, most recent first.
        """
        reverted: list[Edit] = []
        while self._edit_log:
            edit = self._edit_log.pop()
            inverse = edit.inverse()
            self._apply_edit(
                inverse.offset, len(inverse.removed_text), inverse.inserted_text
            )
            reverted.append(edit)
            try:
                self._attempt_parse()
            except ParseError:
                continue
            break
        return reverted

    # -- queries --------------------------------------------------------------------

    @property
    def body(self) -> Node | None:
        """The start-symbol node of the current tree (None before parse)."""
        return self.tree.kids[1] if self.tree is not None else None

    @property
    def is_ambiguous(self) -> bool:
        return self.tree is not None and bool(choice_points(self.tree))

    def source_text(self) -> str:
        """Reconstruct text from the tree (must equal ``self.text``)."""
        if self.tree is None:
            return self.text
        return unparse(self.tree)

    def terminal_for_offset(self, offset: int) -> TerminalNode | None:
        """The terminal node whose span contains ``offset``."""
        pos = 0
        for token in self.tokens:
            if pos <= offset < pos + token.width:
                entry = self._token_nodes.get(id(token))
                return entry[1] if entry else None
            pos += token.width
        return None
