# Convenience targets; all testing goes through pytest.
#
#   make test    - tier-1 correctness suite
#   make smoke   - robustness smoke: fuzz + fault-injection suites with
#                  post-commit DAG invariant validation enabled
#   make bench   - reproduction benchmarks (writes benchmarks/results/)

PY = PYTHONPATH=src python

.PHONY: test smoke bench

test:
	$(PY) -m pytest -q

smoke:
	REPRO_VALIDATE=1 $(PY) -m pytest -q -m "fuzz or faults"

bench:
	$(PY) -m pytest -q benchmarks
