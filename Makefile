# Convenience targets; all testing goes through pytest.
#
#   make test        - tier-1 correctness suite
#   make smoke       - robustness smoke: fuzz + fault-injection suites with
#                      post-commit DAG invariant validation enabled
#   make bench       - reproduction benchmarks (writes benchmarks/results/)
#   make bench-smoke - quick perf-regression gate: writes
#                      BENCH_incremental.json and fails if per-edit
#                      incremental time exceeds batch reparse time, if
#                      disabled-observability overhead exceeds 3% of
#                      per-edit latency, or if the analysis service
#                      cannot hold 8 concurrent sessions with p95 edit
#                      latency under the batch-reparse baseline; also
#                      sweeps the sharded backend (--workers 2) and
#                      fails if one sharded worker falls under 60% of
#                      in-process throughput
#   make serve-smoke - end-to-end analysis-service check: drives a
#                      scripted session through `repro serve` over stdio
#                      (examples/service_session.py), then the same
#                      script through the sharded backend (--workers 2)
#   make shard-smoke - multi-process shard gate: dispatcher routing,
#                      cross-process store locking, cache warm starts,
#                      kill-a-worker recovery (the multiproc marker)
#   make semantics-smoke - incremental-semantics gate: the semantics
#                      marker (differential conformance, project graph,
#                      service ops) plus the cross-document bench check
#                      that re-decisions per header edit track dependent
#                      fanout, not project or document size
#   make grammar-smoke - real-language-scale gate: the grammar marker
#                      (fullc grammar + typedef analysis, DSL error-path
#                      properties, grammar-agnostic scenario generators,
#                      service-wide grammar hot-reload incl. the sharded
#                      backend and snapshot rehydration)
#   make fault-smoke - crash-safety gate: the kill -9 recovery harness
#                      (SIGKILL a live `repro serve --state-dir` at every
#                      registered persistence crash point, restart,
#                      assert byte-identical rehydration), the durable-
#                      snapshot suites, and the crash-point coverage gate
#   make trace-demo  - sample observability run: writes a JSON-lines span
#                      trace of an example edit session to
#                      benchmarks/results/TRACE_demo.jsonl

PY = PYTHONPATH=src python

.PHONY: test smoke bench bench-smoke serve-smoke fault-smoke shard-smoke \
	semantics-smoke grammar-smoke trace-demo

test:
	$(PY) -m pytest -q

smoke:
	REPRO_VALIDATE=1 $(PY) -m pytest -q -m "fuzz or faults"

fault-smoke:
	$(PY) -m pytest -q -m "persistence or (faults and service)" \
		tests/service

bench:
	$(PY) -m pytest -q benchmarks

bench-smoke:
	$(PY) -m repro.bench.incremental --smoke --check \
		--out benchmarks/results/BENCH_incremental.json
	$(PY) -m repro.bench.obs_overhead --check \
		--out benchmarks/results/BENCH_obs_overhead.json
	$(PY) -m repro.bench.service --smoke --check --workers 2 \
		--out benchmarks/results/BENCH_service.json
	$(PY) -m repro.bench.semantics --smoke --check \
		--out benchmarks/results/BENCH_semantics.json

serve-smoke:
	$(PY) examples/service_session.py
	$(PY) examples/service_session.py --workers 2

shard-smoke:
	$(PY) -m pytest -q -m multiproc tests/service

semantics-smoke:
	$(PY) -m pytest -q -m semantics
	$(PY) -m repro.bench.semantics --smoke --check \
		--out benchmarks/results/BENCH_semantics.json

grammar-smoke:
	$(PY) -m pytest -q -m grammar

trace-demo:
	REPRO_TRACE=benchmarks/results/TRACE_demo.jsonl $(PY) -m repro \
		edit calc examples/grammars/sample.calc "4:1:9" "10:0:+2" "10:2:" \
		--balanced
	@echo "wrote benchmarks/results/TRACE_demo.jsonl"
