# Convenience targets; all testing goes through pytest.
#
#   make test        - tier-1 correctness suite
#   make smoke       - robustness smoke: fuzz + fault-injection suites with
#                      post-commit DAG invariant validation enabled
#   make bench       - reproduction benchmarks (writes benchmarks/results/)
#   make bench-smoke - quick perf-regression gate: writes
#                      BENCH_incremental.json and fails if per-edit
#                      incremental time exceeds batch reparse time

PY = PYTHONPATH=src python

.PHONY: test smoke bench bench-smoke

test:
	$(PY) -m pytest -q

smoke:
	REPRO_VALIDATE=1 $(PY) -m pytest -q -m "fuzz or faults"

bench:
	$(PY) -m pytest -q benchmarks

bench-smoke:
	$(PY) -m repro.bench.incremental --smoke --check \
		--out benchmarks/results/BENCH_incremental.json
